package jobs

import (
	"fmt"
	"strings"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
)

// DatasetSpec names a synthetic dataset from the catalog
// (dataset.CatalogNames): rcv1-like, mnist8m-like, epsilon-like.
type DatasetSpec struct {
	Name string `json:"name"`
	// Scale is tiny (default), small, or full.
	Scale string `json:"scale,omitempty"`
	// Seed defaults to 1; jobs with equal (name, scale, seed) share one
	// generated dataset, which is what dataset-affinity routing keys on.
	Seed int64 `json:"seed,omitempty"`
}

// Key is the affinity/cache key: jobs with equal keys run against the same
// in-memory dataset.
func (d DatasetSpec) Key() string {
	return fmt.Sprintf("%s@%s#%d", strings.ToLower(d.Name), d.Scale, d.Seed)
}

func (d *DatasetSpec) normalize() error {
	if d.Name == "" {
		return fmt.Errorf("jobs: dataset name is required (known: %s)",
			strings.Join(dataset.CatalogNames(), ", "))
	}
	sc, err := dataset.ParseScale(d.Scale)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	d.Scale = dataset.ScaleName(sc)
	if d.Seed == 0 {
		d.Seed = 1
	}
	if _, err := dataset.ByName(d.Name, sc, d.Seed); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// config resolves the generator configuration.
func (d DatasetSpec) config() (dataset.SynthConfig, error) {
	sc, err := dataset.ParseScale(d.Scale)
	if err != nil {
		return dataset.SynthConfig{}, err
	}
	return dataset.ByName(d.Name, sc, d.Seed)
}

// BarrierSpec selects the per-job barrier-control policy. The zero value
// inherits the engine default (ASP unless configured otherwise).
type BarrierSpec struct {
	// Kind is asp, bsp, or ssp ("" = engine default).
	Kind string `json:"kind,omitempty"`
	// Staleness is the SSP bound; required for kind ssp.
	Staleness int64 `json:"staleness,omitempty"`
}

func (b BarrierSpec) barrier() (async.Barrier, error) {
	switch strings.ToLower(b.Kind) {
	case "":
		return nil, nil
	case "asp":
		return async.ASP(), nil
	case "bsp":
		return async.BSP(), nil
	case "ssp":
		if b.Staleness <= 0 {
			return nil, fmt.Errorf("jobs: ssp barrier needs a positive staleness bound, got %d", b.Staleness)
		}
		return async.SSP(b.Staleness), nil
	default:
		return nil, fmt.Errorf("jobs: unknown barrier kind %q (asp, bsp, ssp)", b.Kind)
	}
}

// StepSpec selects the step-size schedule. The zero value is
// invsqrt(0.05) scaled down by the engine's worker count — the paper's
// heuristic for asynchronous variants.
type StepSpec struct {
	// Kind is const, invsqrt, or async ("" = invsqrt).
	Kind string `json:"kind,omitempty"`
	// A is the base step size (default 0.05).
	A float64 `json:"a,omitempty"`
	// Factor divides the schedule (Scaled); 0 applies the default
	// worker-count scaling for invsqrt and none for const.
	Factor float64 `json:"factor,omitempty"`
}

func (st StepSpec) schedule(workers int) (opt.Schedule, error) {
	a := st.A
	if a == 0 {
		a = 0.05
	}
	if a < 0 {
		return nil, fmt.Errorf("jobs: step a %v must be positive", a)
	}
	if st.Factor < 0 {
		return nil, fmt.Errorf("jobs: step factor %v must be non-negative", st.Factor)
	}
	var base opt.Schedule
	scale := st.Factor
	switch strings.ToLower(st.Kind) {
	case "const":
		base = opt.Constant{A: a}
	case "", "invsqrt":
		base = opt.InvSqrt{A: a}
		if scale == 0 {
			scale = float64(workers)
		}
	case "async":
		// AsyncDecay embeds its own worker-count scaling; an explicit
		// Factor still divides uniformly like for the other kinds
		base = opt.AsyncDecay{A: a, Workers: float64(workers)}
	default:
		return nil, fmt.Errorf("jobs: unknown step kind %q (const, invsqrt, async)", st.Kind)
	}
	if scale > 0 && scale != 1 {
		base = opt.Scaled{Base: base, Factor: scale}
	}
	return base, nil
}

// Spec declaratively describes one optimization job. Zero values take the
// documented defaults, so the minimal request is an algorithm plus a
// dataset name.
type Spec struct {
	// Algorithm is any solver resolvable by the registry (async.Solvers).
	Algorithm string      `json:"algorithm"`
	Dataset   DatasetSpec `json:"dataset"`
	Barrier   BarrierSpec `json:"barrier,omitzero"`
	Step      StepSpec    `json:"step,omitzero"`

	// Objective is the structured composite objective: a named loss
	// (least-squares default, logistic) plus optional l2 (ridge) and l1
	// (sparsity) penalties. ℓ1 objectives are accepted only for solvers
	// with a proximal step (sgd, asgd, cd, gcg).
	Objective async.Objective `json:"objective,omitzero"`

	// Loss is the deprecated flat alias for Objective.Loss, kept for
	// pre-objective clients; setting both to different losses is an error.
	Loss string `json:"loss,omitempty"`
	// Mode selects the block-selection order for the coordinate solvers:
	// cd accepts cyclic (default), random, or greedy (Gauss-Southwell via
	// the driver-side MaxIP index, with verified-or-fallback semantics);
	// gcg accepts full (default) or greedy. Solvers without selection
	// modes reject a non-empty mode at submission.
	Mode string `json:"mode,omitempty"`
	// SampleFrac is the mini-batch sampling rate b (default 0.3).
	SampleFrac float64 `json:"sample_frac,omitempty"`
	// Updates is the model-update budget (default 200; rounds for
	// admm/bcd).
	Updates int `json:"updates,omitempty"`
	// SnapshotEvery is the trace/progress resolution (default Updates/10).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// StalenessLR applies the staleness-dependent learning-rate modulation.
	StalenessLR bool `json:"staleness_lr,omitempty"`

	// Priority orders the queue: higher runs first, FIFO within a level.
	// A strictly-higher-priority job that would otherwise wait preempts the
	// lowest-priority running job (checkpointed aside, resumed later).
	Priority int `json:"priority,omitempty"`

	// Tenant names the submitting tenant for admission control (per-tenant
	// queue quotas, Config.TenantQuota) and per-tenant serving stats. Empty
	// is the anonymous default tenant.
	Tenant string `json:"tenant,omitempty"`

	// SLOMillis is a soft completion deadline, milliseconds from
	// submission. When a queued job's remaining slack drops below the
	// scheduler's SLOSlack, it may preempt a running job with more slack at
	// the same or lower priority. 0 means no deadline.
	SLOMillis int64 `json:"slo_ms,omitempty"`

	// CheckpointEvery captures a driver checkpoint every that many model
	// updates; the latest is retrievable via the scheduler (and the
	// /v1/jobs/{id}/checkpoint endpoint). Preemption captures one
	// regardless.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// MaxRetries bounds scheduler-side re-queues after a transient runtime
	// failure: instead of failing outright, the job goes back in the queue
	// and resumes from its last durable checkpoint. Default 1; -1 disables
	// retries. Cancellations and preemptions never count as retries.
	MaxRetries int `json:"max_retries,omitempty"`

	// ResumeFrom resumes from the named job's latest checkpoint. Every
	// field left unset inherits the source job's spec (objective, schedule,
	// sampling, barrier, budget, priority), so a bare resume_from continues
	// the exact run; the source must still be retained and hold a
	// checkpoint.
	ResumeFrom ID `json:"resume_from,omitempty"`

	// FStar is the reference optimum f(w*) subtracted from progress and
	// trace errors; AutoFStar computes (and caches per dataset) the
	// least-squares reference optimum server-side instead.
	FStar     float64 `json:"fstar,omitempty"`
	AutoFStar bool    `json:"auto_fstar,omitempty"`
}

func (sp *Spec) normalize() error {
	if sp.Algorithm == "" {
		return fmt.Errorf("jobs: algorithm is required (known: %s)", strings.Join(async.Solvers(), ", "))
	}
	if _, err := async.Lookup(sp.Algorithm); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if err := sp.Dataset.normalize(); err != nil {
		return err
	}
	if _, err := sp.Barrier.barrier(); err != nil {
		return err
	}
	if err := sp.normalizeObjective(); err != nil {
		return err
	}
	if err := sp.normalizeMode(); err != nil {
		return err
	}
	if sp.SampleFrac == 0 {
		sp.SampleFrac = 0.3
	}
	if sp.SampleFrac < 0 || sp.SampleFrac > 1 {
		return fmt.Errorf("jobs: sample_frac %v outside (0,1]", sp.SampleFrac)
	}
	if sp.Updates == 0 {
		sp.Updates = 200
	}
	if sp.Updates < 0 {
		return fmt.Errorf("jobs: updates %d must be positive", sp.Updates)
	}
	if sp.SnapshotEvery == 0 {
		sp.SnapshotEvery = sp.Updates / 10
		if sp.SnapshotEvery < 1 {
			sp.SnapshotEvery = 1
		}
	}
	if sp.SnapshotEvery < 0 {
		return fmt.Errorf("jobs: snapshot_every %d must be positive", sp.SnapshotEvery)
	}
	if sp.CheckpointEvery < 0 {
		return fmt.Errorf("jobs: checkpoint_every %d must be non-negative", sp.CheckpointEvery)
	}
	if sp.MaxRetries == 0 {
		sp.MaxRetries = 1
	}
	if sp.MaxRetries < -1 {
		return fmt.Errorf("jobs: max_retries %d must be >= -1 (-1 disables retries)", sp.MaxRetries)
	}
	if sp.SLOMillis < 0 {
		return fmt.Errorf("jobs: slo_ms %d must be non-negative", sp.SLOMillis)
	}
	if _, err := sp.Step.schedule(1); err != nil {
		return err
	}
	return nil
}

// canonLossName collapses the loss-name aliases for conflict detection.
func canonLossName(s string) string {
	switch strings.ToLower(s) {
	case "", "ls", "least-squares":
		return "least-squares"
	default:
		return strings.ToLower(s)
	}
}

// noProxSolvers are the built-in solvers without a proximal step: an ℓ1
// objective would be silently dropped, so submission rejects it up front.
// Solvers outside this map (including custom registrations) pass; the opt
// registry applies its own gate at run time.
var noProxSolvers = map[string]bool{
	"saga": true, "asaga": true, "svrg": true, "admm": true, "bcd": true,
	"mllib-sgd": true, "asgd-remote": true, "asaga-remote": true,
}

// penaltyBlindSolvers optimize a hardwired or wire-validated plain loss and
// would ignore any penalty term entirely.
var penaltyBlindSolvers = map[string]bool{
	"admm": true, "bcd": true, "asgd-remote": true, "asaga-remote": true,
}

// normalizeObjective merges the deprecated flat Loss alias into the
// structured Objective, validates it, and checks the chosen solver can
// actually optimize it.
func (sp *Spec) normalizeObjective() error {
	if sp.Loss != "" && sp.Objective.Loss != "" &&
		canonLossName(sp.Loss) != canonLossName(sp.Objective.Loss) {
		return fmt.Errorf("jobs: loss %q conflicts with objective.loss %q (drop the deprecated top-level loss)",
			sp.Loss, sp.Objective.Loss)
	}
	if sp.Objective.Loss == "" {
		sp.Objective.Loss = sp.Loss
	}
	if err := sp.Objective.Validate(); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	algo := strings.ToLower(sp.Algorithm)
	if sp.Objective.L1 > 0 && noProxSolvers[algo] {
		return fmt.Errorf("jobs: solver %q has no proximal step and cannot solve an ℓ1 objective (use sgd, asgd, cd or gcg)", algo)
	}
	if (sp.Objective.L1 > 0 || sp.Objective.L2 > 0) && penaltyBlindSolvers[algo] {
		return fmt.Errorf("jobs: solver %q ignores penalty terms; submit the objective to sgd, asgd, cd or gcg instead", algo)
	}
	// admm/bcd hardwire least squares: auto_fstar against any other
	// submitted objective would gauge the run against the wrong optimum
	if sp.AutoFStar && (algo == "admm" || algo == "bcd") &&
		canonLossName(sp.Objective.Loss) != "least-squares" {
		return fmt.Errorf("jobs: auto_fstar would compute the reference optimum of objective %q, but solver %q optimizes plain least squares — drop auto_fstar or change the objective", sp.Objective.Loss, algo)
	}
	return nil
}

// modeSolvers lists, per algorithm, the selection modes Spec.Mode accepts.
// Solvers outside the map have no mode knob and reject a non-empty Mode.
var modeSolvers = map[string][]string{
	"cd":  {"cyclic", "random", "greedy"},
	"gcg": {"full", "greedy"},
}

// normalizeMode lower-cases and validates Spec.Mode against the chosen
// solver's selection modes.
func (sp *Spec) normalizeMode() error {
	if sp.Mode == "" {
		return nil
	}
	algo := strings.ToLower(sp.Algorithm)
	allowed, ok := modeSolvers[algo]
	if !ok {
		return fmt.Errorf("jobs: solver %q has no selection modes (mode applies to: cd, gcg)", algo)
	}
	mode := strings.ToLower(sp.Mode)
	for _, m := range allowed {
		if mode == m {
			sp.Mode = mode
			return nil
		}
	}
	return fmt.Errorf("jobs: unknown mode %q for solver %q (known: %s)",
		sp.Mode, algo, strings.Join(allowed, ", "))
}

// objective returns the merged structured objective (flat Loss alias
// folded in).
func (sp Spec) objective() async.Objective {
	o := sp.Objective
	if o.Loss == "" {
		o.Loss = sp.Loss
	}
	return o
}

func (sp Spec) loss() (opt.Loss, error) {
	l, err := sp.objective().Resolve()
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	return l, nil
}

// withResumeBase overlays this spec on the spec of the job being resumed:
// every field the submission leaves at its zero value inherits the source
// job's setting, so a bare {"resume_from": "job-000001"} continues the
// exact run — same objective, schedule, sampling, barrier, budget and
// priority — rather than silently resetting hyperparameters to global
// defaults. Explicitly set fields override. (Boolean knobs can only be
// turned on, not off, relative to the source — JSON zero values are
// indistinguishable from "unset".)
func (sp Spec) withResumeBase(base Spec) Spec {
	out := base
	out.ResumeFrom = sp.ResumeFrom
	if sp.Algorithm != "" {
		out.Algorithm = sp.Algorithm
	}
	if sp.Dataset.Name != "" {
		out.Dataset = sp.Dataset
	}
	if sp.Barrier.Kind != "" {
		out.Barrier = sp.Barrier
	}
	if sp.Step != (StepSpec{}) {
		out.Step = sp.Step
	}
	if sp.Loss != "" {
		out.Loss = sp.Loss
	}
	if sp.Mode != "" {
		out.Mode = sp.Mode
	}
	switch {
	case sp.Objective != (async.Objective{}):
		// an explicit structured objective overrides wholesale
		out.Objective = sp.Objective
	case sp.Loss != "":
		// flat-alias override swaps the loss but keeps inherited penalties
		out.Objective.Loss = sp.Loss
	}
	if sp.SampleFrac != 0 {
		out.SampleFrac = sp.SampleFrac
	}
	if sp.Updates != 0 {
		out.Updates = sp.Updates
	}
	if sp.SnapshotEvery != 0 {
		out.SnapshotEvery = sp.SnapshotEvery
	}
	if sp.Priority != 0 {
		out.Priority = sp.Priority
	}
	if sp.CheckpointEvery != 0 {
		out.CheckpointEvery = sp.CheckpointEvery
	}
	if sp.MaxRetries != 0 {
		out.MaxRetries = sp.MaxRetries
	}
	if sp.FStar != 0 {
		out.FStar = sp.FStar
	}
	if sp.Tenant != "" {
		out.Tenant = sp.Tenant
	}
	if sp.SLOMillis != 0 {
		out.SLOMillis = sp.SLOMillis
	}
	out.StalenessLR = out.StalenessLR || sp.StalenessLR
	out.AutoFStar = out.AutoFStar || sp.AutoFStar
	return out
}

// maxRetries is the effective retry budget: -1 means none.
func (sp Spec) maxRetries() int {
	if sp.MaxRetries < 0 {
		return 0
	}
	return sp.MaxRetries
}

// solveOptions assembles the engine-facing run configuration. workers is
// the executing engine's pool size (step-schedule scaling).
func (sp Spec) solveOptions(workers int) (async.SolveOptions, error) {
	loss, err := sp.loss()
	if err != nil {
		return async.SolveOptions{}, err
	}
	barrier, err := sp.Barrier.barrier()
	if err != nil {
		return async.SolveOptions{}, err
	}
	step, err := sp.Step.schedule(workers)
	if err != nil {
		return async.SolveOptions{}, err
	}
	out := async.SolveOptions{
		Params: opt.Params{
			Loss:            loss,
			Step:            step,
			SampleFrac:      sp.SampleFrac,
			Updates:         sp.Updates,
			Barrier:         barrier,
			StalenessLR:     sp.StalenessLR,
			SnapshotEvery:   sp.SnapshotEvery,
			CheckpointEvery: sp.CheckpointEvery,
		},
		Objective: sp.objective(),
		FStar:     sp.FStar,
	}
	switch strings.ToLower(sp.Algorithm) {
	case "cd":
		out.CD.Mode = sp.Mode
	case "gcg":
		out.GCG.Mode = sp.Mode
	}
	return out, nil
}
