package jobs

import (
	"context"
	"math"
	"time"

	"repro/async"
	"repro/async/jobs/store"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

// ID identifies a submitted job.
type ID string

// State is a job's lifecycle phase.
type State string

// Job lifecycle states: queued → running → done | failed | canceled, with
// running → preempted → running excursions when the scheduler takes the
// engine away mid-run (the job holds a checkpoint and waits, queued, to be
// resumed).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePreempted State = "preempted"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// EventType discriminates entries of a job's event stream.
type EventType string

// Event types: one per state transition plus in-run progress samples.
// EventPreempted marks a mid-run checkpoint capture that returned the
// engine to the pool; EventResumed marks the job re-dispatching from that
// checkpoint.
const (
	EventQueued    EventType = "queued"
	EventStarted   EventType = "started"
	EventProgress  EventType = "progress"
	EventPreempted EventType = "preempted"
	EventResumed   EventType = "resumed"
	EventDone      EventType = "done"
	EventFailed    EventType = "failed"
	EventCanceled  EventType = "canceled"
)

// Event is one entry of a job's progress stream.
type Event struct {
	Job   ID        `json:"job"`
	Seq   int       `json:"seq"`
	Type  EventType `json:"type"`
	State State     `json:"state"`
	// Updates is the model-update count at the sample.
	Updates int64 `json:"updates,omitempty"`
	// Error is the current suboptimality f(w) − FStar, present when the
	// event carries a model snapshot and the value is finite.
	Error *float64 `json:"error,omitempty"`
	// ElapsedMS is solver wall-clock at the sample (progress events).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Wait summarizes per-worker wait times (terminal events of completed
	// runs).
	Wait *metrics.WaitSummary `json:"wait,omitempty"`
	// Message carries the failure/cancellation reason.
	Message string `json:"message,omitempty"`
}

// Job is a point-in-time snapshot of a job's lifecycle, safe to retain.
type Job struct {
	ID     ID     `json:"id"`
	Spec   Spec   `json:"spec"`
	State  State  `json:"state"`
	Engine int    `json:"engine"` // pool slot that ran it; -1 before dispatch
	Err    string `json:"err,omitempty"`

	Queued   time.Time `json:"queued"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`

	// Updates is the latest observed model-update count.
	Updates int64 `json:"updates"`
	// FinalError is the trace's final suboptimality, when finite.
	FinalError *float64 `json:"final_error,omitempty"`
	// Wait summarizes the run's per-worker wait times.
	Wait *metrics.WaitSummary `json:"wait,omitempty"`
	// QueueWaitMS is the time the job spent queued before dispatch (so
	// far, for jobs still queued).
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// Preemptions counts how many times the job was checkpointed aside for
	// a higher-priority job (or an explicit Preempt call).
	Preemptions int `json:"preemptions,omitempty"`
	// HasCheckpoint reports whether a driver checkpoint is retrievable for
	// the job (periodic cadence or preemption capture).
	HasCheckpoint bool `json:"has_checkpoint,omitempty"`
	// ResumedFrom names the job whose checkpoint seeded this one (Spec
	// resume_from submissions).
	ResumedFrom ID `json:"resumed_from,omitempty"`
	// RunStats carries the engine's coordinator-level statistics for the
	// job's run — update clock, staleness distribution, per-worker waits —
	// sampled at each progress event and at run unwind.
	RunStats *async.RunStats `json:"run_stats,omitempty"`
	// Retries counts scheduler-side re-queues after transient run failures
	// (Spec.MaxRetries).
	Retries int `json:"retries,omitempty"`
	// Remote marks a job whose lease another replica currently holds: it
	// runs there, this replica only mirrors its durable records.
	Remote bool `json:"remote,omitempty"`
	// Owner names the replica holding the job's lease ("" when unleased or
	// in single-node mode).
	Owner string `json:"owner,omitempty"`
}

// job is the scheduler-internal record; all fields are guarded by the
// scheduler mutex except ctx/cancel/done (safe for concurrent use) and
// spec/dataKey/seq (immutable after Submit).
type job struct {
	id      ID
	spec    Spec
	dataKey string
	seq     int64

	state   State
	engine  int
	skipped int // times affinity routing jumped a later job past this head
	err     string
	// submitted is the original submission wall time (never reset; SLO
	// deadlines and durable records anchor to it), queued the last enqueue
	// (reset on preemption, for queue-wait accounting).
	submitted time.Time
	queued    time.Time
	started   time.Time
	finished  time.Time
	// deadline is submitted + Spec.SLOMillis (zero when the spec named no
	// SLO); it survives restarts because replay re-derives it.
	deadline time.Time
	updates  int64
	finalErr *float64
	wait     *metrics.WaitSummary
	result   *async.Result

	ctx             context.Context
	cancel          context.CancelFunc
	cancelRequested bool
	done            chan struct{}

	// preemption state: the signal polled by the running solver, the
	// latest captured checkpoint (periodic or preemption), and whether a
	// preempt has been requested but not yet unwound.
	preempt      *opt.PreemptSignal
	cp           *opt.Checkpoint
	preempting   bool
	preemptAsked time.Time
	preemptions  int
	resumedFrom  ID

	// durable-checkpoint bookkeeping (store-backed schedulers only): the
	// dispatch-seq key and update clock of the last spill on disk.
	cpSeq     int64
	cpUpdates int64
	cpSpilled bool

	// replica-mode state: lease is the fencing token this replica holds
	// while the job runs here; leaseLost flags a heartbeat self-fence (the
	// run's outcome must be abandoned, not finalized); remote marks a job
	// another replica owns; orphanedAt stamps the lease-expiry instant the
	// failover latency is measured from; retries counts Spec.MaxRetries
	// re-queues after transient run failures.
	lease       store.Lease
	leaseLost   bool
	remote      bool
	remoteOwner string
	orphanedAt  time.Time
	retries     int

	// trace is the job's run-scoped telemetry stream (scheduler lifecycle
	// events plus the driver runtime's, correlated by job ID). Immutable
	// pointer after Submit/rebuild; the Trace itself is internally locked.
	trace *telemetry.Trace
	// runStats is the latest engine-coordinator snapshot for the job's run.
	runStats *async.RunStats

	events   []Event
	eventSeq int
	subs     []chan Event
}

func (j *job) snapshot() Job {
	s := Job{
		ID:            j.id,
		Spec:          j.spec,
		State:         j.state,
		Engine:        j.engine,
		Err:           j.err,
		Queued:        j.queued,
		Started:       j.started,
		Finished:      j.finished,
		Updates:       j.updates,
		FinalError:    j.finalErr,
		Wait:          j.wait,
		Preemptions:   j.preemptions,
		HasCheckpoint: j.cp != nil,
		ResumedFrom:   j.resumedFrom,
		RunStats:      j.runStats,
		Retries:       j.retries,
		Remote:        j.remote,
	}
	if j.lease.Epoch != 0 {
		s.Owner = j.lease.Owner
	} else if j.remote {
		s.Owner = j.remoteOwner
	}
	switch {
	case j.state == StateQueued || j.state == StatePreempted:
		// live wait; a preempted job's queued stamp restarts at preemption
		// (started still holds the previous dispatch, so it must not win)
		s.QueueWaitMS = float64(time.Since(j.queued).Microseconds()) / 1000.0
	case !j.started.IsZero() && !j.started.Before(j.queued):
		s.QueueWaitMS = float64(j.started.Sub(j.queued).Microseconds()) / 1000.0
	case !j.finished.IsZero():
		// canceled while waiting after a preemption (queued stamp is later
		// than the old start): report the wait from requeue to finalize
		s.QueueWaitMS = float64(j.finished.Sub(j.queued).Microseconds()) / 1000.0
	}
	return s
}

// finitePtr returns &v when v is a normal number, nil for NaN/Inf — keeps
// job snapshots JSON-marshalable (encoding/json rejects NaN).
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
