package jobs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/async/jobs"
)

func postJob(t *testing.T, base string, spec jobs.Spec) jobs.ID {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var out struct {
		ID jobs.ID `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("submit returned no job id")
	}
	return out.ID
}

func getJob(t *testing.T, base string, id jobs.ID) jobs.Job {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var job jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

// TestHTTPEndToEnd drives a full job lifecycle through the HTTP API: submit
// → SSE event stream → status; plus cancel, health, metrics, and the error
// paths.
func TestHTTPEndToEnd(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 2})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	id := postJob(t, srv.URL, jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   60, SnapshotEvery: 10,
		AutoFStar: true,
	})

	// the SSE stream replays history and follows the run to termination
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var sawQueued, sawProgress, sawDone bool
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "event: queued":
			sawQueued = true
		case line == "event: progress":
			sawProgress = true
		case line == "event: done":
			sawDone = true
		case strings.HasPrefix(line, "data: ") && sawDone:
			var ev jobs.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("terminal event payload: %v", err)
			}
			if ev.Type == jobs.EventDone && ev.State != jobs.StateDone {
				t.Fatalf("done event in state %s", ev.State)
			}
		}
	}
	if !sawQueued || !sawProgress || !sawDone {
		t.Fatalf("stream missing phases: queued=%v progress=%v done=%v", sawQueued, sawProgress, sawDone)
	}

	job := getJob(t, srv.URL, id)
	if job.State != jobs.StateDone {
		t.Fatalf("job state %s, want done", job.State)
	}
	if job.FinalError == nil || *job.FinalError < 0 {
		t.Fatalf("final error %v, want finite non-negative suboptimality", job.FinalError)
	}

	// list contains the job
	listResp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []jobs.Job
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("list %+v, want the one job", list)
	}

	// cancel via DELETE: hold both engines with gated jobs, queue a victim
	g1 := postJob(t, srv.URL, gateSpec(gateHTTP, 601))
	g2 := postJob(t, srv.URL, gateSpec(gateHTTP, 602))
	expectStart(t, gateHTTP, 601)
	expectStart(t, gateHTTP, 602)
	victim := postJob(t, srv.URL, gateSpec(gateHTTP, 603))
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%s", srv.URL, victim), nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d", delResp.StatusCode)
	}
	if got := getJob(t, srv.URL, victim); got.State != jobs.StateCanceled {
		t.Fatalf("victim state %s, want canceled", got.State)
	}
	release(t, gateHTTP)
	release(t, gateHTTP)
	waitState(t, s, g1, jobs.StateDone)
	waitState(t, s, g2, jobs.StateDone)

	// healthz names capacity and capabilities
	hResp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status     string   `json:"status"`
		Algorithms []string `json:"algorithms"`
		Datasets   []string `json:"datasets"`
		EnginesMax int      `json:"engines_max"`
	}
	if err := json.NewDecoder(hResp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if health.Status != "ok" || health.EnginesMax != 2 {
		t.Fatalf("healthz %+v", health)
	}
	if !contains(health.Algorithms, "asgd") || !contains(health.Datasets, "rcv1-like") {
		t.Fatalf("healthz capabilities missing: %+v", health)
	}

	// stats reflect the served jobs
	mResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats jobs.Stats
	if err := json.NewDecoder(mResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	mResp.Body.Close()
	if stats.Submitted != 4 || stats.Done != 3 || stats.Canceled != 1 {
		t.Fatalf("stats %+v, want submitted=4 done=3 canceled=1", stats)
	}

	// error paths: bad spec, unknown job
	badResp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"algorithm":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status %d", badResp.StatusCode)
	}
	missing, err := http.Get(srv.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", missing.StatusCode)
	}
}

// TestHTTPBackpressure maps queue saturation to 503 + Retry-After.
func TestHTTPBackpressure(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1, QueueDepth: 1})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()
	running := postJob(t, srv.URL, gateSpec(gateHTTP, 701))
	expectStart(t, gateHTTP, 701)
	queued := postJob(t, srv.URL, gateSpec(gateHTTP, 702))
	body, _ := json.Marshal(gateSpec(gateHTTP, 703))
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("saturated submit missing Retry-After header")
	}
	release(t, gateHTTP)
	expectStart(t, gateHTTP, 702)
	release(t, gateHTTP)
	waitState(t, s, running, jobs.StateDone)
	waitState(t, s, queued, jobs.StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Running > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}

func contains(list []string, want string) bool {
	for _, v := range list {
		if v == want {
			return true
		}
	}
	return false
}
