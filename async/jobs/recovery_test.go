package jobs_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/async/jobs"
	"repro/async/jobs/store"
)

// TestRecoveryEdgeCases replays a hand-built log through a Mem-backed
// scheduler (the store is a seam — recovery must not care which
// implementation is underneath): terminal jobs land in retention with their
// detail, orphan transitions are skipped, a checkpointed record whose spill
// is missing restarts the job from scratch, and a spec that no longer
// normalizes fails loudly instead of wedging the queue.
func TestRecoveryEdgeCases(t *testing.T) {
	m := store.NewMem()
	specJSON := func(sp jobs.Spec) []byte {
		b, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	good := jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   25,
	}
	bogus := good
	bogus.Algorithm = "no-such-algorithm"
	for _, rec := range []*store.Record{
		{Type: store.TypeSubmitted, Job: "job-000001", JobSeq: 1, Time: 100, Spec: specJSON(good)},
		{Type: store.TypeFailed, Job: "job-000001", Time: 200, Detail: "boom"},
		{Type: store.TypeSubmitted, Job: "job-000002", JobSeq: 2, Time: 300, Spec: specJSON(good)},
		{Type: store.TypeCanceled, Job: "job-000002", Time: 400, Detail: "operator"},
		{Type: store.TypeDispatched, Job: "job-000099", Time: 500}, // orphan: its submit was compacted away
		{Type: store.TypeSubmitted, Job: "job-000003", JobSeq: 3, Time: 600, Spec: specJSON(good)},
		{Type: store.TypeDispatched, Job: "job-000003", Time: 700},
		// references a spill that was never written: load fails, restart from 0
		{Type: store.TypeCheckpointed, Job: "job-000003", Time: 800, Updates: 500, DispatchSeq: 9},
		{Type: store.TypeSubmitted, Job: "job-000004", JobSeq: 4, Time: 900, Spec: specJSON(bogus)},
	} {
		if err := m.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	s := newScheduler(t, jobs.Config{Engines: 1, Store: m})
	st := s.Stats()
	if st.RecoveredJobs != 4 {
		t.Fatalf("recovered %d jobs, want 4 (orphan skipped)", st.RecoveredJobs)
	}
	if st.StoreErrors < 1 {
		t.Fatalf("store errors %d, want >=1 for the missing spill", st.StoreErrors)
	}
	if job, err := s.Status("job-000001"); err != nil || job.State != jobs.StateFailed || job.Err != "boom" {
		t.Fatalf("job-000001 %+v (err %v), want failed/boom", job, err)
	}
	if job, err := s.Status("job-000002"); err != nil || job.State != jobs.StateCanceled || job.Err != "operator" {
		t.Fatalf("job-000002 %+v (err %v), want canceled/operator", job, err)
	}
	if _, err := s.Status("job-000099"); err == nil {
		t.Fatal("orphan transition materialized a job")
	}
	if job, err := s.Status("job-000004"); err != nil || job.State != jobs.StateFailed || !strings.Contains(job.Err, "recovery:") {
		t.Fatalf("job-000004 %+v (err %v), want failed with a recovery-prefixed error", job, err)
	}
	// the job with the lost spill restarted from scratch and finishes
	if job := waitState(t, s, "job-000003", jobs.StateDone); job.Preemptions != 0 {
		t.Fatalf("restarted job carries %d preemptions, want 0", job.Preemptions)
	}
	// new submissions continue the recovered ID sequence
	id, err := s.Submit(good)
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-000005" {
		t.Fatalf("post-recovery submit got %s, want job-000005", id)
	}
	waitState(t, s, id, jobs.StateDone)
}
