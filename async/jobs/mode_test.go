package jobs_test

import (
	"strings"
	"testing"

	"repro/async"
	"repro/async/jobs"
)

// TestModeSubmitValidation pins the Spec.Mode gate: per-algorithm mode
// names are accepted (and lower-cased), unknown modes and modes on
// solvers without a selection knob are rejected at submission.
func TestModeSubmitValidation(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	ds := jobs.DatasetSpec{Name: "rcv1-like"}

	id, err := s.Submit(jobs.Spec{
		Algorithm: "cd", Dataset: ds, Mode: "Greedy",
		Updates: 5, SnapshotEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job, _ := s.Status(id); job.Spec.Mode != "greedy" {
		t.Fatalf("mode not normalized: %q", job.Spec.Mode)
	}
	s.Cancel(id)

	cases := []struct {
		name string
		spec jobs.Spec
		want string
	}{
		{"mode on asgd",
			jobs.Spec{Algorithm: "asgd", Dataset: ds, Mode: "greedy"},
			"no selection modes"},
		{"unknown cd mode",
			jobs.Spec{Algorithm: "cd", Dataset: ds, Mode: "steepest"},
			"unknown mode"},
		{"cd-only mode on gcg",
			jobs.Spec{Algorithm: "gcg", Dataset: ds, Mode: "cyclic"},
			"unknown mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit(tc.spec)
			if err == nil {
				t.Fatalf("submission accepted: %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGreedyModeJobsEndToEnd runs greedy-selection cd and gcg jobs through
// the scheduler: the mode survives the wire format, the solve completes,
// and the ℓ1 term still produces exact zeros (greedy changes the visit
// order, not the prox math).
func TestGreedyModeJobsEndToEnd(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	for _, algo := range []string{"cd", "gcg"} {
		t.Run(algo, func(t *testing.T) {
			sp := jobs.Spec{
				Algorithm: algo, Mode: "greedy",
				Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
				Objective: async.Objective{Loss: "least-squares", L2: 0.01, L1: 0.01},
				Updates:   60, SnapshotEvery: 20,
			}
			if algo == "gcg" {
				sp.Step = jobs.StepSpec{Kind: "const", A: 0.02}
			}
			id, err := s.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			job := waitState(t, s, id, jobs.StateDone)
			if job.Spec.Mode != "greedy" {
				t.Fatalf("mode lost in normalization: %+v", job.Spec)
			}
			res, err := s.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			zeros, nonzeros := 0, 0
			for _, x := range res.W {
				if x == 0 {
					zeros++
				} else {
					nonzeros++
				}
			}
			if zeros == 0 {
				t.Fatalf("%s greedy: ℓ1 objective produced no exact zeros", algo)
			}
			if nonzeros == 0 {
				t.Fatalf("%s greedy: solve collapsed to the all-zero model", algo)
			}
		})
	}
}
