package jobs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
	"repro/internal/opt"
)

// pgate is a preempt-aware controllable test solver: it announces each
// dispatch (fresh starts and checkpoint resumes separately), then blocks
// until released, canceled, or preempted — on preemption it returns a
// synthetic checkpoint tagged with its Updates budget.
type pgate struct {
	name    string
	starts  chan int
	resumes chan int64
	release chan struct{}
}

func newPGate(name string) *pgate {
	return &pgate{
		name:    name,
		starts:  make(chan int, 64),
		resumes: make(chan int64, 64),
		release: make(chan struct{}),
	}
}

func (g *pgate) Name() string { return g.name }

func (g *pgate) Solve(ctx context.Context, e *async.Engine, d *dataset.Dataset, opts async.SolveOptions) (*async.Result, error) {
	if opts.Params.Resume != nil {
		g.resumes <- opts.Params.Resume.Updates
	} else {
		g.starts <- opts.Params.Updates
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-g.release:
			return &async.Result{
				Trace: &metrics.Trace{
					Algorithm: g.name,
					Dataset:   d.Name,
					Points:    []metrics.TracePoint{{Updates: int64(opts.Params.Updates)}},
				},
				W: la.NewVec(d.NumCols()),
			}, nil
		case <-tick.C:
			if opts.Params.Preempt.Requested() {
				return nil, &opt.PreemptedError{Checkpoint: &opt.Checkpoint{
					Algorithm: g.name,
					W:         la.NewVec(d.NumCols()),
					Updates:   int64(opts.Params.Updates),
				}}
			}
		}
	}
}

var (
	gateVictim  = newPGate("pgate-victim")
	gateUrgent  = newGate("gate-urgent")
	gateManual  = newPGate("pgate-manual")
	gateHTTPPre = newPGate("pgate-http")
)

func init() {
	for _, g := range []*pgate{gateVictim, gateManual, gateHTTPPre} {
		if err := async.Register(g); err != nil {
			panic(err)
		}
	}
	if err := async.Register(gateUrgent); err != nil {
		panic(err)
	}
}

func expectResume(t *testing.T, g *pgate, updates int64) {
	t.Helper()
	select {
	case got := <-g.resumes:
		if got != updates {
			t.Fatalf("resumed from checkpoint at %d, want %d", got, updates)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("job never resumed from its checkpoint")
	}
}

// TestPriorityContentionPreempts: on a saturated single-engine pool, a
// strictly-higher-priority submission checkpoints the running
// lower-priority job aside, runs to completion, and the victim resumes
// from its checkpoint and finishes.
func TestPriorityContentionPreempts(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	low := gateSpec2(gateVictim.name, 41)
	lowID, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateVictim.starts, 41)

	urgent := gateSpec(gateUrgent, 99)
	urgent.Priority = 5
	urgentID, err := s.Submit(urgent)
	if err != nil {
		t.Fatal(err)
	}
	// the victim is checkpointed aside; the urgent job takes the engine
	expectStart(t, gateUrgent, 99)
	if job, err := s.Status(lowID); err != nil || job.State != jobs.StatePreempted {
		t.Fatalf("victim state %v (err %v), want preempted", job.State, err)
	}
	if cp, err := s.Checkpoint(lowID); err != nil || cp.Updates != 41 {
		t.Fatalf("victim checkpoint %+v (err %v)", cp, err)
	}
	release(t, gateUrgent)
	waitState(t, s, urgentID, jobs.StateDone)

	// the victim resumes from its checkpoint and completes
	expectResume(t, gateVictim, 41)
	releasePG(t, gateVictim)
	job := waitState(t, s, lowID, jobs.StateDone)
	if job.Preemptions != 1 {
		t.Fatalf("victim preemptions %d, want 1", job.Preemptions)
	}
	types := eventTypes(t, s, lowID)
	for _, want := range []jobs.EventType{jobs.EventPreempted, jobs.EventResumed} {
		if !strings.Contains(types, string(want)) {
			t.Fatalf("victim events %q missing %q", types, want)
		}
	}
}

// TestEqualPriorityDoesNotPreempt: preemption requires strictly higher
// priority — an equal-priority arrival waits.
func TestEqualPriorityDoesNotPreempt(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	lowID, err := s.Submit(gateSpec2(gateVictim.name, 43))
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateVictim.starts, 43)
	peerID, err := s.Submit(gateSpec2(gateVictim.name, 44))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // give a wrong preemption time to fire
	if job, _ := s.Status(lowID); job.State != jobs.StateRunning {
		t.Fatalf("equal-priority arrival disturbed the running job: %s", job.State)
	}
	if job, _ := s.Status(peerID); job.State != jobs.StateQueued {
		t.Fatalf("peer should queue, is %s", job.State)
	}
	releasePG(t, gateVictim)
	waitState(t, s, lowID, jobs.StateDone)
	expectStartTag(t, gateVictim.starts, 44)
	releasePG(t, gateVictim)
	waitState(t, s, peerID, jobs.StateDone)
}

// TestManualPreemptRequeuesAndResumes: an explicit Preempt call yields the
// engine; with nothing else waiting the job resumes immediately.
func TestManualPreemptRequeuesAndResumes(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	id, err := s.Submit(gateSpec2(gateManual.name, 51))
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateManual.starts, 51)
	if err := s.Preempt(id); err != nil {
		t.Fatal(err)
	}
	expectResume(t, gateManual, 51)
	releasePG(t, gateManual)
	job := waitState(t, s, id, jobs.StateDone)
	if job.Preemptions != 1 {
		t.Fatalf("preemptions %d, want 1", job.Preemptions)
	}
	if s.Stats().Preempted != 1 {
		t.Fatalf("stats preempted %d, want 1", s.Stats().Preempted)
	}
}

// TestPreemptValidation: only running jobs can be preempted.
func TestPreemptValidation(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	if err := s.Preempt("job-999999"); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
	runningID, err := s.Submit(gateSpec2(gateManual.name, 52))
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateManual.starts, 52)
	queuedID, err := s.Submit(gateSpec2(gateManual.name, 53))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preempt(queuedID); !errors.Is(err, jobs.ErrNotRunning) {
		t.Fatalf("queued job preempt: %v", err)
	}
	if err := s.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	releasePG(t, gateManual)
	done := waitState(t, s, runningID, jobs.StateDone)
	if err := s.Preempt(done.ID); !errors.Is(err, jobs.ErrNotRunning) {
		t.Fatalf("terminal job preempt: %v", err)
	}
	// resume_from validation
	if _, err := s.Submit(jobs.Spec{ResumeFrom: "job-424242"}); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Fatalf("resume_from unknown: %v", err)
	}
	if _, err := s.Submit(jobs.Spec{ResumeFrom: done.ID}); !errors.Is(err, jobs.ErrNoCheckpoint) {
		t.Fatalf("resume_from without checkpoint: %v", err)
	}
}

// TestPreemptResumeEquivalenceE2E is the acceptance check at the scheduler
// layer: a real ASGD job preempted mid-run and resumed from its checkpoint
// must produce bit-for-bit the same final model as the same spec run
// uninterrupted (single-worker engines; the checkpoint carries the update
// clock, momentum state, and the task-seed stream position).
func TestPreemptResumeEquivalenceE2E(t *testing.T) {
	spec := jobs.Spec{
		Algorithm:     "asgd",
		Dataset:       jobs.DatasetSpec{Name: "rcv1-like"},
		Step:          jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:       1500,
		SnapshotEvery: 25,
	}
	engOpts := []async.Option{
		async.WithWorkers(1),
		async.WithPartitions(2),
		async.WithMinTaskTime(200 * time.Microsecond),
	}
	run := func(preemptAfterProgress bool) la.Vec {
		s := newScheduler(t, jobs.Config{Engines: 1, EngineOptions: engOpts})
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if preemptAfterProgress {
			events, stop, err := s.Subscribe(id)
			if err != nil {
				t.Fatal(err)
			}
			sawProgress := false
			for ev := range events {
				if ev.Type == jobs.EventProgress && !sawProgress {
					sawProgress = true
					if err := s.Preempt(id); err != nil {
						t.Fatalf("preempt: %v", err)
					}
				}
			}
			stop()
			job := waitState(t, s, id, jobs.StateDone)
			if job.Preemptions < 1 {
				t.Fatalf("job completed without being preempted (preemptions %d)", job.Preemptions)
			}
		} else {
			waitState(t, s, id, jobs.StateDone)
		}
		res, err := s.Result(id)
		if err != nil || res == nil {
			t.Fatalf("no result: %v", err)
		}
		return res.W
	}
	wFull := run(false)
	wPre := run(true)
	if !la.Equal(wFull, wPre, 0) {
		t.Fatal("preempted-then-resumed model != uninterrupted model on a fixed seed")
	}
}

// TestPreemptHTTPAndResumeFrom drives the new HTTP surface: preempt via
// POST, download the binary checkpoint, and resume it as a new job with
// resume_from.
func TestPreemptHTTPAndResumeFrom(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	spec := gateSpec2(gateHTTPPre.name, 61)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID jobs.ID `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	expectStartTag(t, gateHTTPPre.starts, 61)

	// no checkpoint yet
	if resp, _ := http.Get(srv.URL + "/v1/jobs/" + string(submitted.ID) + "/checkpoint"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint before capture: %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/jobs/"+string(submitted.ID)+"/preempt", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("preempt status %d", resp.StatusCode)
	}
	// the job resumes on its own (nothing else contends); cancel the
	// resumed run so the checkpoint stays inspectable
	expectResume(t, gateHTTPPre, 61)

	resp, err = http.Get(srv.URL + "/v1/jobs/" + string(submitted.ID) + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	cp, err := opt.LoadCheckpoint(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("checkpoint body does not parse: %v", err)
	}
	if cp.Algorithm != gateHTTPPre.name || cp.Updates != 61 {
		t.Fatalf("checkpoint %+v", cp)
	}

	// resume_from spawns a fresh job seeded with the same checkpoint
	resumeBody := fmt.Sprintf(`{"resume_from": %q}`, submitted.ID)
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(resumeBody))
	if err != nil {
		t.Fatal(err)
	}
	var resumed struct {
		ID jobs.ID `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&resumed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume_from status %d", resp.StatusCode)
	}
	// finish the original resumed run, then the resume_from job dispatches
	releasePG(t, gateHTTPPre)
	waitState(t, s, submitted.ID, jobs.StateDone)
	expectResume(t, gateHTTPPre, 61)
	releasePG(t, gateHTTPPre)
	job := waitState(t, s, resumed.ID, jobs.StateDone)
	if job.ResumedFrom != submitted.ID {
		t.Fatalf("resumed_from %q, want %q", job.ResumedFrom, submitted.ID)
	}
}

// TestResumeFromInheritsSpec: a bare resume_from submission continues the
// source job's exact configuration — objective, schedule, sampling,
// priority — rather than resetting hyperparameters to global defaults.
func TestResumeFromInheritsSpec(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	src := jobs.Spec{
		Algorithm:       gateManual.name,
		Dataset:         jobs.DatasetSpec{Name: "rcv1-like"},
		Loss:            "logistic",
		Objective:       async.Objective{L2: 0.013, L1: 0.0017},
		Step:            jobs.StepSpec{Kind: "const", A: 0.007},
		SampleFrac:      0.11,
		Updates:         71,
		Priority:        3,
		StalenessLR:     true,
		CheckpointEvery: 9,
	}
	srcID, err := s.Submit(src)
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateManual.starts, 71)
	if err := s.Preempt(srcID); err != nil {
		t.Fatal(err)
	}
	expectResume(t, gateManual, 71) // resumes itself; now holds a checkpoint
	resumedID, err := s.Submit(jobs.Spec{ResumeFrom: srcID, Updates: 72})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Status(resumedID)
	if err != nil {
		t.Fatal(err)
	}
	got := job.Spec
	if got.Loss != "logistic" || got.Step.A != 0.007 || got.SampleFrac != 0.11 ||
		got.Priority != 3 || !got.StalenessLR || got.CheckpointEvery != 9 ||
		got.Algorithm != gateManual.name || got.Dataset.Name != "rcv1-like" {
		t.Fatalf("resume_from lost source spec fields: %+v", got)
	}
	// the full composite objective rides along: merged loss and penalties
	if got.Objective.Loss != "logistic" || got.Objective.L2 != 0.013 || got.Objective.L1 != 0.0017 {
		t.Fatalf("resume_from lost the composite objective: %+v", got.Objective)
	}
	if got.Updates != 72 {
		t.Fatalf("explicit override lost: updates %d, want 72", got.Updates)
	}
	s.Cancel(resumedID)
	releasePG(t, gateManual)
	waitState(t, s, srcID, jobs.StateDone)
}

// TestEngineDefaultCheckpointCadence: a pool-wide WithCheckpointEvery
// default must surface checkpoints for jobs that set no cadence of their
// own (the scheduler wires OnCheckpoint unconditionally).
func TestEngineDefaultCheckpointCadence(t *testing.T) {
	s := newScheduler(t, jobs.Config{
		Engines: 1,
		EngineOptions: []async.Option{
			async.WithWorkers(1),
			async.WithPartitions(2),
			async.WithCheckpointEvery(25),
		},
	})
	id, err := s.Submit(jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := waitState(t, s, id, jobs.StateDone)
	if !job.HasCheckpoint {
		t.Fatal("engine-default cadence produced no retrievable checkpoint")
	}
	cp, err := s.Checkpoint(id)
	if err != nil || cp.Algorithm != "asgd" || cp.Updates%25 != 0 || cp.Updates == 0 {
		t.Fatalf("checkpoint %+v (err %v), want asgd at a multiple of 25", cp, err)
	}
}

// TestCancelWhilePreempted: a job canceled while parked in StatePreempted
// finalizes cleanly and never reports a negative queue wait.
func TestCancelWhilePreempted(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	aID, err := s.Submit(gateSpec2(gateManual.name, 55))
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateManual.starts, 55)
	bID, err := s.Submit(gateSpec2(gateManual.name, 56))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preempt(aID); err != nil {
		t.Fatal(err)
	}
	// A re-queues behind B; B takes the engine, leaving A preempted
	expectStartTag(t, gateManual.starts, 56)
	if job, _ := s.Status(aID); job.State != jobs.StatePreempted {
		t.Fatalf("job A is %s, want preempted", job.State)
	} else if job.QueueWaitMS < 0 {
		t.Fatalf("preempted snapshot has negative queue wait %v", job.QueueWaitMS)
	}
	if err := s.Cancel(aID); err != nil {
		t.Fatal(err)
	}
	job := waitState(t, s, aID, jobs.StateCanceled)
	if job.QueueWaitMS < 0 {
		t.Fatalf("canceled-while-preempted snapshot has negative queue wait %v", job.QueueWaitMS)
	}
	releasePG(t, gateManual)
	waitState(t, s, bID, jobs.StateDone)
}

// --- helpers ---

func gateSpec2(algo string, tag int) jobs.Spec {
	return jobs.Spec{
		Algorithm: algo,
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Updates:   tag,
	}
}

func expectStartTag(t *testing.T, starts chan int, tag int) {
	t.Helper()
	select {
	case got := <-starts:
		if got != tag {
			t.Fatalf("started job %d, want %d", got, tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("no job started (want %d)", tag)
	}
}

func releasePG(t *testing.T, g *pgate) {
	t.Helper()
	select {
	case g.release <- struct{}{}:
	case <-time.After(10 * time.Second):
		t.Fatal("no run consumed the release token")
	}
}

func eventTypes(t *testing.T, s *jobs.Scheduler, id jobs.ID) string {
	t.Helper()
	events, stop, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var types []string
	for ev := range events {
		types = append(types, string(ev.Type))
	}
	return strings.Join(types, ",")
}
