package jobs_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/async/jobs"
	"repro/async/jobs/store"
)

// idSeq parses the submission ordinal out of a job ID ("job-%06d" or the
// replica-qualified "job-<replica>-%06d"), mirroring the cursor's parse.
func idSeq(t *testing.T, id jobs.ID) int64 {
	t.Helper()
	i := strings.LastIndexByte(string(id), '-')
	n, err := strconv.ParseInt(string(id)[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("unparseable job ID %q: %v", id, err)
	}
	return n
}

// TestListPageCrossReplicaTies: imported remote jobs keep their home
// replica's submission ordinal, so jobs from different replicas tie on
// seq. Pagination must walk the full (seq, id) order — a cursor comparing
// the bare ordinal strictly-greater would skip or duplicate entries at
// ties.
func TestListPageCrossReplicaTies(t *testing.T) {
	mem := store.NewMem()
	cfgA := replicaConfig(mem, "a")
	cfgA.EngineOptions = chaosEngOpts
	cfgB := replicaConfig(mem, "b")
	cfgB.EngineOptions = chaosEngOpts
	sA := newScheduler(t, cfgA)
	sB := newScheduler(t, cfgB)

	const perReplica = 3
	want := map[jobs.ID]bool{}
	for i := 0; i < perReplica; i++ {
		ida, err := sA.Submit(asgdSpec(200))
		if err != nil {
			t.Fatal(err)
		}
		idb, err := sB.Submit(asgdSpec(200))
		if err != nil {
			t.Fatal(err)
		}
		want[ida], want[idb] = true, true
	}
	waitFor(t, 30*time.Second, "both replicas see all submissions", func() bool {
		return len(sA.List()) == 2*perReplica && len(sB.List()) == 2*perReplica
	})

	for _, s := range []*jobs.Scheduler{sA, sB} {
		got := map[jobs.ID]bool{}
		var prev jobs.Job
		var cursor jobs.ID
		for {
			page, next := s.ListPage(jobs.ListQuery{After: cursor, Limit: 1})
			if len(page) == 0 {
				break
			}
			j := page[0]
			if got[j.ID] {
				t.Fatalf("job %s paginated twice (cursor %q)", j.ID, cursor)
			}
			if !want[j.ID] {
				t.Fatalf("unexpected job %s in listing", j.ID)
			}
			got[j.ID] = true
			seq, prevSeq := idSeq(t, j.ID), int64(-1)
			if prev.ID != "" {
				prevSeq = idSeq(t, prev.ID)
			}
			if prev.ID != "" && (seq < prevSeq || (seq == prevSeq && j.ID <= prev.ID)) {
				t.Fatalf("pagination order broken: %s (seq %d) after %s (seq %d)",
					j.ID, seq, prev.ID, prevSeq)
			}
			prev = j
			if next == "" {
				if len(got) != len(want) {
					t.Fatalf("cursor exhausted after %d jobs, want %d", len(got), len(want))
				}
				break
			}
			cursor = next
		}
		if len(got) != len(want) {
			t.Fatalf("pagination visited %d of %d jobs (ties skipped)", len(got), len(want))
		}
	}
}
