package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"repro/async/jobs/store"
	"repro/internal/telemetry"
)

// Replica mode: several schedulers share one lease-capable store (a Shared
// WAL on a common directory, or one *Mem in tests). Every job is claimed
// through the store's lease CAS before it dispatches, every
// ownership-asserting append carries the claim's (owner, epoch) fencing
// token, and two background loops keep the replicas coherent:
//
//   - the heartbeat renews held leases every Config.RenewEvery; a renewal
//     that comes back ErrFenced (or cannot reach the store while the lease
//     is about to lapse) self-fences the run — it is canceled and its
//     outcome abandoned, because an adopter owns the job's history now;
//   - the tail scan replays the shared log past the local watermark every
//     Config.AdoptScanEvery, importing other replicas' submissions as
//     claimable queue entries, marking claimed jobs remote, mirroring
//     their checkpoints and terminal records, and re-enqueueing jobs whose
//     lease expired (orphans) so the claim CAS arbitrates adoption.
//
// Safety rests entirely on the store's fencing: a partitioned replica that
// keeps running past its lease expiry has every subsequent append rejected
// with ErrFenced, so at most one replica's records for a job land after
// failover, and epochs for a job strictly increase across owners.

// startReplicaLoops launches the heartbeat and tail-scan goroutines.
// Called once from New, after recovery.
func (s *Scheduler) startReplicaLoops() {
	s.replicaStop = make(chan struct{})
	s.wg.Add(2)
	go s.heartbeatLoop(s.replicaStop)
	go s.tailLoop(s.replicaStop)
}

func (s *Scheduler) heartbeatLoop(stop <-chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RenewEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.renewHeldLeases()
		}
	}
}

func (s *Scheduler) tailLoop(stop <-chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.AdoptScanEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.syncTail()
			s.adoptOrphans()
		}
	}
}

// stampOwner copies the job's lease fencing token onto an
// ownership-asserting record. A no-op without a held lease (single-owner
// mode, or records of never-dispatched jobs).
func (s *Scheduler) stampOwner(j *job, rec *store.Record) *store.Record {
	if s.leaseStore != nil && j.lease.Epoch != 0 {
		rec.Owner, rec.Epoch = j.lease.Owner, j.lease.Epoch
	}
	return rec
}

// claimLocked runs the lease CAS for a job about to dispatch. On
// ErrLeaseHeld the job is marked remote and leaves the queue (another
// replica won it); on store trouble the job stays queued for the next
// round. A successful claim of an adoption candidate loads the orphan's
// last spilled checkpoint and records the failover latency.
func (s *Scheduler) claimLocked(j *job) bool {
	l, err := s.leaseStore.Claim(string(j.id), s.cfg.ReplicaID, s.cfg.LeaseTTL)
	switch {
	case errors.Is(err, store.ErrLeaseHeld):
		s.removeFromQueueLocked(j)
		j.remote = true
		return false
	case err != nil:
		s.storeErrs++
		s.degraded = true
		return false
	}
	s.degraded = false
	j.lease, j.leaseLost = l, false
	j.remote, j.remoteOwner = false, ""
	if !j.orphanedAt.IsZero() {
		lat := time.Since(j.orphanedAt)
		j.orphanedAt = time.Time{}
		s.adoptedN++
		if lat > 0 {
			s.failoverTotal += lat
			s.failoverN++
			if s.mFailover != nil {
				s.mFailover.ObserveDuration(lat)
			}
		}
		j.trace.Event("adopted", "epoch", l.Epoch,
			"failover_ms", float64(lat.Microseconds())/1000.0)
	}
	if j.cp == nil && j.cpSpilled {
		// adopted (or tail-mirrored) checkpoint: pull the spill so the run
		// resumes from it instead of update 0
		if cp, err := s.cfg.Store.LoadCheckpoint(string(j.id), j.cpSeq); err == nil {
			j.cp = cp
		} else {
			s.storeErrs++
		}
	}
	return true
}

// releaseLeaseLocked ends the job's lease (preemption, retry): the spilled
// checkpoint is durable, so any replica — this one included — may re-claim
// the job through the CAS.
func (s *Scheduler) releaseLeaseLocked(j *job) {
	if s.leaseStore == nil || j.lease.Epoch == 0 {
		return
	}
	lease := j.lease
	j.lease = store.Lease{}
	if err := s.leaseStore.Release(string(j.id), lease.Owner, lease.Epoch); err != nil &&
		!errors.Is(err, store.ErrFenced) {
		s.storeErrs++
	}
}

// fenceRunningLocked marks a running job's lease lost and cancels its run;
// the unwind path then abandons the outcome instead of finalizing it.
func (s *Scheduler) fenceRunningLocked(j *job) {
	if j.leaseLost || j.state != StateRunning || j.remote {
		return
	}
	j.leaseLost = true
	j.cancel()
}

// abandonLocked discards a fenced run's outcome: the job's durable history
// belongs to its adopter now, so nothing is appended, released, or
// finalized here. The job is marked remote; if no adopter ever claims it,
// the orphan scan flips it back to claimable.
func (s *Scheduler) abandonLocked(j *job) {
	if j.state.Terminal() {
		// finalizeRemoteLocked landed while run() had mu released (its
		// ownership Renew runs unlocked): the mirrored terminal state is
		// the truth — flipping it back to queued would re-open a job whose
		// done channel is already closed
		return
	}
	s.fencedN++
	j.preempting = false
	j.engine = -1
	j.lease = store.Lease{}
	j.leaseLost = false
	j.cancelRequested = false
	// the self-fence canceled the run context; a future re-adoption
	// needs a fresh one
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.remote = true
	j.state = StateQueued
	j.trace.Event("abandoned", "reason", "lease lost")
	s.emitLocked(j, EventPreempted, "lease lost; run abandoned")
}

// renewHeldLeases extends every lease this replica holds. The store calls
// run outside the scheduler lock; per-job state is re-checked under it.
func (s *Scheduler) renewHeldLeases() {
	type held struct {
		j     *job
		lease store.Lease
	}
	s.mu.Lock()
	var hs []held
	for _, j := range s.jobs {
		if j.state == StateRunning && !j.remote && !j.leaseLost && j.lease.Epoch != 0 {
			hs = append(hs, held{j, j.lease})
		}
	}
	s.mu.Unlock()
	for _, h := range hs {
		l, err := s.leaseStore.Renew(string(h.j.id), h.lease.Owner, h.lease.Epoch, s.cfg.LeaseTTL)
		s.mu.Lock()
		switch {
		case err == nil:
			s.degraded = false
			if h.j.lease.Epoch == h.lease.Epoch {
				h.j.lease = l
			}
		case errors.Is(err, store.ErrFenced):
			// ownership is gone (expiry + adoption, or a newer claim):
			// self-fence now so the run stops burning its update budget
			s.fenceRunningLocked(h.j)
		default:
			s.storeErrs++
			s.degraded = true
			if time.Until(time.Unix(0, h.lease.ExpiresAt)) < s.cfg.RenewEvery {
				// the store is unreachable and the lease will lapse before
				// the next heartbeat: assume an adopter exists
				s.fenceRunningLocked(h.j)
			}
		}
		s.mu.Unlock()
	}
}

// syncTail replays the shared log past the local watermark and folds the
// other replicas' records into local state.
func (s *Scheduler) syncTail() {
	var recs []store.Record
	wm, err := s.leaseStore.ReplaySince(s.wm, func(r store.Record) error {
		recs = append(recs, r)
		return nil
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.storeErrs++
		return
	}
	s.wm = wm
	if s.closed {
		return
	}
	for i := range recs {
		s.applyRemoteLocked(&recs[i])
	}
	s.dispatchLocked()
}

// applyRemoteLocked folds one shared-log record into local state. Records
// this replica wrote itself (rec.Owner == ReplicaID, or a Submitted for a
// known job) are idempotently skipped: the local mutation already applied.
func (s *Scheduler) applyRemoteLocked(rec *store.Record) {
	us := s.cfg.ReplicaID
	j := s.jobs[ID(rec.Job)]
	switch rec.Type {
	case store.TypeSubmitted:
		if j == nil {
			s.importRemoteSubmitLocked(rec)
		}
	case store.TypeClaimed:
		if j == nil || rec.Owner == us || j.state.Terminal() {
			return
		}
		if j.lease.Epoch != 0 && !j.leaseLost {
			if rec.Epoch > j.lease.Epoch {
				// the log proves a newer claim displaced ours
				s.fenceRunningLocked(j)
			}
			return
		}
		s.removeFromQueueLocked(j)
		j.remote, j.remoteOwner = true, rec.Owner
	case store.TypeDispatched:
		if j == nil || rec.Owner == "" || rec.Owner == us || j.state.Terminal() {
			return
		}
		if j.lease.Epoch != 0 && !j.leaseLost {
			return
		}
		s.removeFromQueueLocked(j)
		j.remote, j.remoteOwner = true, rec.Owner
		if rec.Updates > j.updates {
			j.updates = rec.Updates
		}
	case store.TypeCheckpointed, store.TypePreempted:
		if j == nil || rec.Owner == "" || rec.Owner == us || j.state.Terminal() {
			return
		}
		j.cpSeq, j.cpUpdates, j.cpSpilled = rec.DispatchSeq, rec.Updates, true
		j.cp = nil // stale local capture; reload from the spill on adoption
		if rec.Updates > j.updates {
			j.updates = rec.Updates
		}
	case store.TypeReleased:
		if j == nil || rec.Owner == "" || rec.Owner == us || j.state.Terminal() || !j.remote {
			return
		}
		// the owner let go (preemption, retry): the job is claimable again
		j.remote, j.remoteOwner = false, ""
		j.state = StateQueued
		if j.cpSpilled {
			j.state = StatePreempted
		}
		j.queued = time.Now()
		if !s.inQueueLocked(j) {
			s.enqueueLocked(j)
		}
	case store.TypeDone, store.TypeFailed, store.TypeCanceled:
		if j == nil || rec.Owner == us || j.state.Terminal() {
			return
		}
		s.finalizeRemoteLocked(j, rec)
	}
}

// importRemoteSubmitLocked builds a claimable local job from another
// replica's Submitted record. The job enters the queue like any other —
// whichever replica's dispatch wins the claim CAS runs it, which is how a
// second replica adds throughput. A spec that does not validate against
// this process's registry is left to its home replica.
func (s *Scheduler) importRemoteSubmitLocked(rec *store.Record) {
	if len(s.queue) >= s.cfg.QueueDepth {
		// same admission bound as Submit: a burst on one replica must not
		// grow every replica's queue without limit — over-limit imports
		// stay with their home replica
		return
	}
	var spec Spec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		s.storeErrs++
		return
	}
	if err := spec.normalize(); err != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        ID(rec.Job),
		spec:      spec,
		dataKey:   spec.Dataset.Key(),
		seq:       rec.JobSeq,
		state:     StateQueued,
		engine:    -1,
		submitted: time.Unix(0, rec.Time),
		queued:    time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	if spec.SLOMillis > 0 {
		j.deadline = j.submitted.Add(time.Duration(spec.SLOMillis) * time.Millisecond)
	}
	j.trace = telemetry.NewTrace(string(j.id), 0)
	j.trace.Event("imported", "algorithm", spec.Algorithm, "tenant", spec.Tenant)
	s.jobs[j.id] = j
	s.enqueueLocked(j)
	s.emitLocked(j, EventQueued, "imported from shared log")
}

// adoptOrphans scans the lease table for expired leases on non-terminal
// jobs and re-enqueues them as claimable: the next dispatch round's claim
// CAS (on whichever replica gets there first) adopts them, resuming from
// the orphan's last spilled checkpoint. Live foreign leases the tail scan
// has not seen yet mark jobs remote.
func (s *Scheduler) adoptOrphans() {
	leases, err := s.leaseStore.Leases()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.storeErrs++
		return
	}
	if s.closed || s.draining {
		return
	}
	now := time.Now()
	dispatch := false
	for _, l := range leases {
		j, ok := s.jobs[ID(l.Job)]
		if !ok || j.state.Terminal() {
			continue
		}
		if l.Live(now) {
			if l.Owner != s.cfg.ReplicaID && !j.remote && j.state != StateRunning {
				s.removeFromQueueLocked(j)
				j.remote, j.remoteOwner = true, l.Owner
			}
			continue
		}
		if j.state == StateRunning && !j.remote {
			continue // our own expiring run; the heartbeat handles it
		}
		if s.inQueueLocked(j) {
			if j.orphanedAt.IsZero() {
				j.orphanedAt = time.Unix(0, l.ExpiresAt)
			}
			continue
		}
		j.remote, j.remoteOwner = false, ""
		j.orphanedAt = time.Unix(0, l.ExpiresAt)
		j.state = StateQueued
		if j.cpSpilled || j.cp != nil {
			j.state = StatePreempted
		}
		j.queued = now
		s.enqueueLocked(j)
		j.trace.Event("orphaned", "expired_owner", l.Owner, "epoch", l.Epoch)
		s.emitLocked(j, EventQueued, "lease expired; adoptable")
		dispatch = true
	}
	if dispatch {
		s.dispatchLocked()
	}
}

// inQueueLocked reports whether the job is in the waiting queue.
func (s *Scheduler) inQueueLocked(j *job) bool {
	for _, q := range s.queue {
		if q == j {
			return true
		}
	}
	return false
}

// finalizeRemoteLocked mirrors another replica's terminal record: local
// bookkeeping only — no store appends and no completion counters (the
// owner counted the outcome), but waiters unblock and subscribers see the
// terminal event exactly as if the job had finished here.
func (s *Scheduler) finalizeRemoteLocked(j *job, rec *store.Record) {
	s.removeFromQueueLocked(j)
	if j.state == StateRunning && !j.remote {
		// we believed the run was ours; the foreign terminal record proves
		// otherwise — stop it, its unwind backs off on the terminal state
		s.fenceRunningLocked(j)
	}
	j.engine = -1
	j.remote, j.remoteOwner = true, rec.Owner
	j.lease = store.Lease{}
	// j.leaseLost is deliberately left as-is: a fenced run's unwind may not
	// have observed it yet, and clearing it here would send that unwind down
	// the finalize path instead of the (terminal-guarded) abandon path
	j.finished = time.Unix(0, rec.Time)
	if rec.Updates > j.updates {
		j.updates = rec.Updates
	}
	var typ EventType
	switch rec.Type {
	case store.TypeDone:
		j.state, typ = StateDone, EventDone
		if rec.HasFinal {
			j.finalErr = finitePtr(rec.FinalError)
		}
	case store.TypeFailed:
		j.state, typ = StateFailed, EventFailed
		j.err = rec.Detail
	default:
		j.state, typ = StateCanceled, EventCanceled
		j.err = rec.Detail
	}
	j.trace.Event(string(typ), "owner", rec.Owner, "updates", j.updates)
	ev := s.newEventLocked(j, typ, j.err)
	ev.Updates = j.updates
	ev.Error = j.finalErr
	s.deliverLocked(j, ev)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	s.terminal = append(s.terminal, j.id)
	for len(s.terminal) > s.cfg.Retention {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// Kill terminates the scheduler the way a crash would: runs are canceled
// and engines close, but nothing is finalized, released, or appended — the
// store keeps the pre-crash picture, live leases included, which is
// exactly what a surviving replica fails over from. Chaos/testing hook; a
// killed scheduler is closed for every other purpose.
func (s *Scheduler) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.replicaStop != nil {
		close(s.replicaStop)
		s.replicaStop = nil
	}
	s.queue = nil
	for _, j := range s.jobs {
		if j.state == StateRunning && !j.remote {
			if s.leaseStore != nil {
				j.leaseLost = true // unwind abandons instead of finalizing
			} else {
				j.cancelRequested = true
			}
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	slots := s.slots
	s.slots = nil
	s.mu.Unlock()
	for _, sl := range slots {
		if sl.eng != nil {
			_ = sl.eng.Close()
		}
	}
}
