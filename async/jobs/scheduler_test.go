package jobs_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
)

// gate is a controllable test solver: every run announces itself on starts
// (tagged by its Updates budget) and then blocks until a release token or
// cancellation. It gives tests exact control over engine occupancy.
type gate struct {
	name    string
	starts  chan int
	release chan struct{}
}

func newGate(name string) *gate {
	return &gate{name: name, starts: make(chan int, 64), release: make(chan struct{})}
}

func (g *gate) Name() string { return g.name }

func (g *gate) Solve(ctx context.Context, e *async.Engine, d *dataset.Dataset, opts async.SolveOptions) (*async.Result, error) {
	g.starts <- opts.Params.Updates
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-g.release:
		return &async.Result{
			Trace: &metrics.Trace{
				Algorithm: g.name,
				Dataset:   d.Name,
				Points:    []metrics.TracePoint{{Updates: int64(opts.Params.Updates)}},
			},
			W: la.NewVec(d.NumCols()),
		}, nil
	}
}

// test gates are registered once: the solver registry is process-global.
var (
	gateOrder    = newGate("gate-order")
	gatePressure = newGate("gate-pressure")
	gateQueued   = newGate("gate-queued")
	gateRunning  = newGate("gate-running")
	gateAffinity = newGate("gate-affinity")
	gateHTTP     = newGate("gate-http")
)

func init() {
	for _, g := range []*gate{gateOrder, gatePressure, gateQueued, gateRunning, gateAffinity, gateHTTP} {
		if err := async.Register(g); err != nil {
			panic(err)
		}
	}
}

// newScheduler builds a small fast scheduler for tests.
func newScheduler(t *testing.T, cfg jobs.Config) *jobs.Scheduler {
	t.Helper()
	if cfg.EngineOptions == nil {
		cfg.EngineOptions = []async.Option{async.WithWorkers(2), async.WithPartitions(2)}
	}
	s, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func gateSpec(g *gate, tag int) jobs.Spec {
	return jobs.Spec{
		Algorithm: g.name,
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Updates:   tag,
	}
}

// expectStart asserts the next run the gate admits carries the tag.
func expectStart(t *testing.T, g *gate, tag int) {
	t.Helper()
	select {
	case got := <-g.starts:
		if got != tag {
			t.Fatalf("started job %d, want %d", got, tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("no job started (want %d)", tag)
	}
}

func release(t *testing.T, g *gate) {
	t.Helper()
	select {
	case g.release <- struct{}{}:
	case <-time.After(10 * time.Second):
		t.Fatal("no run consumed the release token")
	}
}

func waitState(t *testing.T, s *jobs.Scheduler, id jobs.ID, want jobs.State) jobs.Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	if job.State != want {
		t.Fatalf("job %s state %s (err %q), want %s", id, job.State, job.Err, want)
	}
	return job
}

func TestQueueOrderingPriorityFIFO(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	// occupy the single engine so subsequent submissions queue up
	if _, err := s.Submit(gateSpec(gateOrder, 101)); err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateOrder, 101)
	for _, j := range []struct{ tag, prio int }{
		{102, 0}, {103, 5}, {104, 5}, {105, 1},
	} {
		spec := gateSpec(gateOrder, j.tag)
		spec.Priority = j.prio
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	// drain: priority desc, FIFO within a level
	for _, want := range []int{103, 104, 105, 102} {
		release(t, gateOrder)
		expectStart(t, gateOrder, want)
	}
	release(t, gateOrder)
}

func TestPoolSaturationBackpressure(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1, QueueDepth: 2})
	if _, err := s.Submit(gateSpec(gatePressure, 201)); err != nil {
		t.Fatal(err)
	}
	expectStart(t, gatePressure, 201)
	ids := make([]jobs.ID, 0, 2)
	for tag := 202; tag <= 203; tag++ {
		id, err := s.Submit(gateSpec(gatePressure, tag))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// 1 running + 2 queued: the bounded queue now rejects
	if _, err := s.Submit(gateSpec(gatePressure, 204)); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("saturated Submit returned %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Queued != 2 || st.Running != 1 {
		t.Fatalf("stats %+v, want rejected=1 queued=2 running=1", st)
	}
	for range 3 {
		release(t, gatePressure)
	}
	<-gatePressure.starts
	<-gatePressure.starts
	for _, id := range ids {
		waitState(t, s, id, jobs.StateDone)
	}
}

func TestCancelQueuedNeverStarts(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	blocker, err := s.Submit(gateSpec(gateQueued, 301))
	if err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateQueued, 301)
	victim, err := s.Submit(gateSpec(gateQueued, 302))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, victim, jobs.StateCanceled)
	if !got.Started.IsZero() {
		t.Fatal("canceled queued job reports a start time")
	}
	// release the blocker; the canceled job must never reach the solver
	release(t, gateQueued)
	waitState(t, s, blocker, jobs.StateDone)
	after, err := s.Submit(gateSpec(gateQueued, 303))
	if err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateQueued, 303) // 302 would have arrived first if it ever started
	release(t, gateQueued)
	waitState(t, s, after, jobs.StateDone)
	// canceling a terminal job stays a no-op
	if err := s.Cancel(victim); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRunningMidRun(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	id, err := s.Submit(gateSpec(gateRunning, 401))
	if err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateRunning, 401)
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	job := waitState(t, s, id, jobs.StateCanceled)
	if job.Err == "" {
		t.Fatal("canceled running job carries no reason")
	}
	// the engine is free again afterwards
	next, err := s.Submit(gateSpec(gateRunning, 402))
	if err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateRunning, 402)
	release(t, gateRunning)
	waitState(t, s, next, jobs.StateDone)
}

func TestDatasetAffinityRouting(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 2})
	dsA := jobs.DatasetSpec{Name: "rcv1-like", Seed: 1}
	dsB := jobs.DatasetSpec{Name: "rcv1-like", Seed: 2}
	submit := func(ds jobs.DatasetSpec, tag int) jobs.ID {
		t.Helper()
		spec := gateSpec(gateAffinity, tag)
		spec.Dataset = ds
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	runOne := func(ds jobs.DatasetSpec, tag int) jobs.Job {
		t.Helper()
		id := submit(ds, tag)
		expectStart(t, gateAffinity, tag)
		release(t, gateAffinity)
		return waitState(t, s, id, jobs.StateDone)
	}
	j1 := runOne(dsA, 501) // engine 0 loads A
	j2 := runOne(dsB, 502) // engine 1 spins up for B (0 holds A)
	j3 := runOne(dsA, 503) // affinity: back to the engine holding A
	j4 := runOne(dsB, 504) // affinity: back to the engine holding B
	if j1.Engine == j2.Engine {
		t.Fatalf("jobs on distinct datasets shared engine %d", j1.Engine)
	}
	if j3.Engine != j1.Engine {
		t.Fatalf("dataset-A job ran on engine %d, want %d (affinity)", j3.Engine, j1.Engine)
	}
	if j4.Engine != j2.Engine {
		t.Fatalf("dataset-B job ran on engine %d, want %d (affinity)", j4.Engine, j2.Engine)
	}

	// affinity queue-jump: with the only matching engine busy, a queued
	// job whose dataset is already resident runs ahead of the queue head
	s2 := newScheduler(t, jobs.Config{Engines: 1})
	blocker := submit2(t, s2, gateAffinity, dsA, 511)
	expectStart(t, gateAffinity, 511)
	headB := submit2(t, s2, gateAffinity, dsB, 512) // queue head, needs a swap
	jumpA := submit2(t, s2, gateAffinity, dsA, 513) // resident dataset
	release(t, gateAffinity)
	waitState(t, s2, blocker, jobs.StateDone)
	expectStart(t, gateAffinity, 513)
	release(t, gateAffinity)
	waitState(t, s2, jumpA, jobs.StateDone)
	expectStart(t, gateAffinity, 512)
	release(t, gateAffinity)
	waitState(t, s2, headB, jobs.StateDone)

	// affinity never crosses a priority boundary: a high-priority job on a
	// cold dataset beats a warm-dataset job of lower priority
	s3 := newScheduler(t, jobs.Config{Engines: 1})
	blocker2 := submit2(t, s3, gateAffinity, dsA, 521)
	expectStart(t, gateAffinity, 521)
	spec := gateSpec(gateAffinity, 522) // cold dataset, high priority
	spec.Dataset = dsB
	spec.Priority = 5
	highB, err := s3.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	lowA := submit2(t, s3, gateAffinity, dsA, 523) // warm dataset, low priority
	release(t, gateAffinity)
	waitState(t, s3, blocker2, jobs.StateDone)
	expectStart(t, gateAffinity, 522)
	release(t, gateAffinity)
	waitState(t, s3, highB, jobs.StateDone)
	expectStart(t, gateAffinity, 523)
	release(t, gateAffinity)
	waitState(t, s3, lowA, jobs.StateDone)
}

func submit2(t *testing.T, s *jobs.Scheduler, g *gate, ds jobs.DatasetSpec, tag int) jobs.ID {
	t.Helper()
	spec := gateSpec(g, tag)
	spec.Dataset = ds
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestConcurrentJobsTwoEngines is the acceptance scenario: many real jobs
// submitted concurrently to a 2-engine pool all reach terminal states with
// no ErrBusy surfacing to any caller.
func TestConcurrentJobsTwoEngines(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 2})
	algorithms := []string{"asgd", "sgd", "saga", "asaga"}
	const n = 9
	var wg sync.WaitGroup
	ids := make([]jobs.ID, n)
	errs := make([]error, n)
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := jobs.Spec{
				Algorithm: algorithms[i%len(algorithms)],
				Dataset:   jobs.DatasetSpec{Name: "rcv1-like", Seed: int64(1 + i%2)},
				Step:      jobs.StepSpec{Kind: "const", A: 0.01},
				Updates:   40,
			}
			ids[i], errs[i] = s.Submit(spec)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i, id := range ids {
		job := waitState(t, s, id, jobs.StateDone)
		if job.Updates < 40 {
			t.Fatalf("job %d finished at %d updates, want >= 40", i, job.Updates)
		}
		if job.Engine < 0 || job.Engine > 1 {
			t.Fatalf("job %d ran on engine %d, want pool of 2", i, job.Engine)
		}
		if strings.Contains(job.Err, "busy") {
			t.Fatalf("ErrBusy leaked to job %d: %s", i, job.Err)
		}
		if job.FinalError == nil {
			t.Fatalf("job %d has no final error", i)
		}
		if job.Wait == nil || job.Wait.Workers == 0 {
			t.Fatalf("job %d has no wait-time summary", i)
		}
	}
	st := s.Stats()
	if st.Done != n || st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("stats %+v, want %d done", st, n)
	}
	if st.EnginesLive != 2 {
		t.Fatalf("engines live %d, want 2", st.EnginesLive)
	}
}

func TestProgressEventsStream(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	id, err := s.Submit(jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   60, SnapshotEvery: 10,
		AutoFStar: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, stop, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var progress, terminal int
	var lastUpdates int64
	deadline := time.After(30 * time.Second)
	for open := true; open; {
		select {
		case ev, ok := <-events:
			if !ok {
				open = false
				break
			}
			switch ev.Type {
			case jobs.EventProgress:
				progress++
				if ev.Updates < lastUpdates {
					t.Fatalf("progress went backwards: %d after %d", ev.Updates, lastUpdates)
				}
				lastUpdates = ev.Updates
				if ev.Error == nil {
					t.Fatal("progress event carries no error value")
				}
			case jobs.EventDone:
				terminal++
				if ev.Wait == nil {
					t.Fatal("done event missing wait summary")
				}
			}
		case <-deadline:
			t.Fatal("event stream did not close")
		}
	}
	if progress < 3 {
		t.Fatalf("saw %d progress events, want >= 3", progress)
	}
	if terminal != 1 {
		t.Fatalf("saw %d terminal events, want 1", terminal)
	}
	// late subscribers get full history replay
	replay, stop2, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	var replayed int
	for range replay {
		replayed++
	}
	if replayed < progress+2 { // queued + started + progress + done
		t.Fatalf("replay delivered %d events, want >= %d", replayed, progress+2)
	}
}

func TestRetentionEviction(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1, Retention: 2})
	run := func(tag int) jobs.ID {
		id, err := s.Submit(jobs.Spec{
			Algorithm: "asgd",
			Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
			Step:      jobs.StepSpec{Kind: "const", A: 0.01},
			Updates:   tag,
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, id, jobs.StateDone)
		return id
	}
	first := run(20)
	second := run(21)
	third := run(22)
	if _, err := s.Status(first); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Fatalf("evicted job Status: %v, want ErrUnknownJob", err)
	}
	for _, id := range []jobs.ID{second, third} {
		if _, err := s.Status(id); err != nil {
			t.Fatalf("retained job %s: %v", id, err)
		}
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("List has %d jobs, want 2", got)
	}
}

func TestSpecValidation(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	bad := []jobs.Spec{
		{},
		{Algorithm: "no-such-algo", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}},
		{Algorithm: "asgd"},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "no-such-dataset"}},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like", Scale: "galactic"}},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, Barrier: jobs.BarrierSpec{Kind: "ssp"}},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, Barrier: jobs.BarrierSpec{Kind: "magic"}},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, Loss: "hinge"},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, SampleFrac: 1.5},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, Updates: -1},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, Step: jobs.StepSpec{Kind: "cubic"}},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Fatalf("invalid specs counted as submissions: %+v", st)
	}
}

func TestClosedScheduler(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	id, err := s.Submit(jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, jobs.StateDone)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(gateSpec(gateOrder, 1)); !errors.Is(err, jobs.ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestSparseWideJobByName runs the sparse-delta data path end to end
// through the serving layer: the high-dimensional sparse-wide catalog
// dataset is resolved by name, its tasks take the O(nnz) kernel path, and
// the driver applies sparse deltas — all behind the ordinary jobs API.
func TestSparseWideJobByName(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	id, err := s.Submit(jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "sparse-wide"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.001},
		// small enough that tasks pass the sparse work gate at tiny scale
		// (0.1 · 2400 partition nnz · 32 ≤ 20000 dims)
		SampleFrac: 0.1,
		Updates:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := waitState(t, s, id, jobs.StateDone)
	if job.Updates < 30 {
		t.Fatalf("job finished at %d updates, want >= 30", job.Updates)
	}
	if job.Err != "" {
		t.Fatalf("job error: %s", job.Err)
	}
}
