package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
)

// retryAfterSeconds is the Retry-After hint on 503 backpressure responses.
const retryAfterSeconds = 1

// NewHandler exposes a scheduler as a JSON/HTTP API:
//
//	POST   /v1/jobs                 submit a Spec, returns {"id": ...} (202);
//	                                "resume_from" resumes another job's checkpoint
//	GET    /v1/jobs                 list job snapshots; ?state= and ?tenant=
//	                                filter, ?limit= + ?cursor= paginate (the
//	                                paged form returns {"jobs": ..., "next": ...})
//	GET    /v1/jobs/{id}            one job snapshot
//	GET    /v1/jobs/{id}/events     live event stream (Server-Sent Events)
//	POST   /v1/jobs/{id}/preempt    checkpoint the running job aside (202)
//	GET    /v1/jobs/{id}/checkpoint latest driver checkpoint (binary format)
//	GET    /v1/jobs/{id}/trace      run-scoped trace events (JSONL download)
//	DELETE /v1/jobs/{id}            cancel (202)
//	GET    /v1/healthz              liveness + capacity summary
//	GET    /v1/stats                serving counters (Stats, JSON)
//	GET    /v1/metrics              Prometheus text exposition format
//	GET    /debug/pprof/            live profiling (CPU, heap, goroutines, ...)
//
// The handler owns no lifecycle: closing the scheduler is the caller's
// job. Every error body is {"error": "..."}.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
			return
		}
		id, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// backpressure is transient: 503 + Retry-After tells well-behaved
			// clients to back off and come back, not that the request was bad
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrStoreUnavailable):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, map[string]any{"id": id})
		}
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		qp := r.URL.Query()
		if len(qp) == 0 {
			// bare listing keeps the original shape: a plain array
			writeJSON(w, http.StatusOK, s.List())
			return
		}
		var q ListQuery
		if v := qp.Get("state"); v != "" {
			st := State(v)
			switch st {
			case StateQueued, StateRunning, StatePreempted, StateDone, StateFailed, StateCanceled:
				q.State = st
			default:
				httpError(w, http.StatusBadRequest, fmt.Errorf("jobs: unknown state %q", v))
				return
			}
		}
		q.Tenant = qp.Get("tenant")
		if v := qp.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("jobs: bad limit %q", v))
				return
			}
			q.Limit = n
		}
		q.After = ID(qp.Get("cursor"))
		page, next := s.ListPage(q)
		writeJSON(w, http.StatusOK, map[string]any{"jobs": page, "next": next})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Status(ID(r.PathValue("id")))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		switch err := s.Cancel(ID(r.PathValue("id"))); {
		case errors.Is(err, ErrRemoteJob):
			httpError(w, http.StatusConflict, err)
		case err != nil:
			httpError(w, http.StatusNotFound, err)
		default:
			writeJSON(w, http.StatusAccepted, map[string]any{"canceled": r.PathValue("id")})
		}
	})
	mux.HandleFunc("POST /v1/jobs/{id}/preempt", func(w http.ResponseWriter, r *http.Request) {
		id := ID(r.PathValue("id"))
		switch err := s.Preempt(id); {
		case errors.Is(err, ErrUnknownJob):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotRunning), errors.Is(err, ErrRemoteJob):
			httpError(w, http.StatusConflict, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusAccepted, map[string]any{"preempted": id})
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		cp, err := s.Checkpoint(ID(r.PathValue("id")))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		// serialize before writing the header so a save failure can still
		// surface as an error status rather than a truncated 200 body
		var buf bytes.Buffer
		if err := opt.SaveCheckpoint(&buf, cp); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		tr, err := s.Trace(ID(r.PathValue("id")))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = tr.WriteTo(w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := ID(r.PathValue("id"))
		events, stop, err := s.Subscribe(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		defer stop()
		fl, ok := w.(http.Flusher)
		if !ok {
			httpError(w, http.StatusInternalServerError, errors.New("jobs: response writer cannot stream"))
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, open := <-events:
				if !open {
					// terminal: close the stream with the final snapshot,
					// covering any progress events a lagging buffer dropped
					if job, err := s.Status(id); err == nil {
						writeSSE(w, "state", job)
						fl.Flush()
					}
					return
				}
				writeSSE(w, string(ev.Type), ev)
				fl.Flush()
			}
		}
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		status := "ok"
		if st.Degraded {
			// the process is alive but the store is erroring: running jobs
			// keep serving while new submissions bounce
			status = "degraded"
		}
		payload := map[string]any{
			"status":       status,
			"engines_live": st.EnginesLive,
			"engines_max":  st.EnginesMax,
			"queued":       st.Queued,
			"running":      st.Running,
			"queue_depth":  st.QueueDepth,
			"algorithms":   async.Solvers(),
			"datasets":     dataset.CatalogNames(),
		}
		if st.Replica != "" {
			payload["replica"] = st.Replica
			payload["leases_held"] = st.LeasesHeld
			payload["remote_jobs"] = st.RemoteJobs
			payload["fenced"] = st.Fenced
			payload["adopted"] = st.Adopted
		}
		writeJSON(w, http.StatusOK, payload)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.WritePrometheus(w)
	})
	// live profiling: the stdlib pprof handlers, mounted explicitly so the
	// daemon does not depend on http.DefaultServeMux side effects
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeSSE(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
