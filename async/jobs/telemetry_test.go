package jobs_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/async/jobs/store"
)

var (
	gateTel  = newGate("gate-tel")
	gateTelR = newGate("gate-tel-restart")
)

func init() {
	for _, g := range []*gate{gateTel, gateTelR} {
		if err := async.Register(g); err != nil {
			panic(err)
		}
	}
}

// Exposition grammar of the Prometheus 0.0.4 text format, per line — the
// same structural check internal/telemetry applies to its own output,
// repeated here against the full serving endpoint (scheduler families plus
// the process-global layers).
var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)
)

// validateExposition fails the test on any line that does not parse under
// the exposition grammar, any duplicated TYPE, or any sample without one.
func validateExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRe.MatchString(line) {
				t.Fatalf("line %d: bad HELP: %q", ln, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad TYPE: %q", ln, line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, m[1])
			}
			typed[m[1]] = m[2]
		case strings.HasPrefix(line, "#"):
			// comment
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad sample: %q", ln, line)
			}
			name := m[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if _, ok := typed[name]; !ok {
				if _, ok := typed[base]; !ok {
					t.Fatalf("line %d: sample %s has no TYPE", ln, name)
				}
			}
			if v := m[len(m)-1]; v != "NaN" && !strings.HasSuffix(v, "Inf") {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					t.Fatalf("line %d: bad value %q: %v", ln, v, err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return typed
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// sampleValue extracts the value of a bare (unlabeled) sample.
func sampleValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("sample %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in:\n%s", name, body)
	return 0
}

// TestMetricsExpositionGrammar validates the whole /v1/metrics payload
// against the text-format grammar — label escaping included (the tenant name
// carries a quote, a backslash, and a newline) — and pins that all five
// instrumented layers expose families, and that counters are monotonic
// across scrapes.
func TestMetricsExpositionGrammar(t *testing.T) {
	dir := t.TempDir()
	w, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := newScheduler(t, jobs.Config{Engines: 1, Store: w})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	spec := gateSpec(gateTel, 61)
	spec.Tenant = "we\"ird\\ten\nant"
	id := postJob(t, srv.URL, spec)
	expectStart(t, gateTel, 61)
	release(t, gateTel)
	waitState(t, s, id, jobs.StateDone)

	body := scrape(t, srv.URL)
	typed := validateExposition(t, body)

	for _, fam := range []string{
		// serving layer (scheduler-private registry)
		"asyncd_jobs_submitted_total", "asyncd_jobs_done_total",
		"asyncd_queue_wait_seconds", "asyncd_tenant_jobs_submitted_total",
		"asyncd_wal_appends_total",
		// core coordinator
		"async_core_tasks_dispatched_total", "async_core_staleness",
		"async_core_task_wait_seconds",
		// opt runtime
		"async_opt_apply_seconds", "async_opt_lazy_settle_backlog",
		"async_opt_checkpoint_save_seconds",
		// WAL store
		"async_wal_append_seconds", "async_wal_fsync_seconds",
		"async_wal_size_bytes",
		// wire codec
		"async_wire_tx_frames_total", "async_wire_rx_bytes_total",
	} {
		if _, ok := typed[fam]; !ok {
			t.Errorf("family %s missing a TYPE line", fam)
		}
	}

	// the hostile tenant name must round-trip escaped
	if !strings.Contains(body, `asyncd_tenant_jobs_submitted_total{tenant="we\"ird\\ten\nant"} 1`) {
		t.Fatalf("tenant label not escaped:\n%s", body)
	}
	// the dispatch observed the per-priority queue-wait histogram
	if !strings.Contains(body, `asyncd_queue_wait_seconds_count{priority="0"} 1`) {
		t.Fatalf("queue-wait histogram not observed:\n%s", body)
	}

	// counters never move backwards between scrapes
	first := map[string]float64{}
	for _, c := range []string{"asyncd_jobs_submitted_total", "asyncd_jobs_done_total", "asyncd_wal_appends_total"} {
		first[c] = sampleValue(t, body, c)
	}
	id2 := postJob(t, srv.URL, gateSpec(gateTel, 62))
	expectStart(t, gateTel, 62)
	release(t, gateTel)
	waitState(t, s, id2, jobs.StateDone)
	body2 := scrape(t, srv.URL)
	validateExposition(t, body2)
	for c, v := range first {
		if got := sampleValue(t, body2, c); got < v {
			t.Errorf("counter %s went backwards: %v -> %v", c, v, got)
		}
	}
}

// TestCountersSurviveRestart pins the recovery-side counter rebuild: after a
// WAL replay the Prometheus counters reflect the replayed terminal jobs
// instead of resetting to zero.
func TestCountersSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	w1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newScheduler(t, jobs.Config{Engines: 1, Store: w1})
	doneID, err := s1.Submit(jobs.Spec{
		Algorithm: gateTelR.name, Dataset: jobs.DatasetSpec{Name: "rcv1-like"},
		Updates: 71, Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateTelR, 71)
	queuedID, err := s1.Submit(gateSpec(gateTelR, 72)) // waits behind the gate
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	release(t, gateTelR)
	waitState(t, s1, doneID, jobs.StateDone)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	w1.Close()

	w2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s2 := newScheduler(t, jobs.Config{Engines: 1, Store: w2})
	st := s2.Stats()
	if st.Submitted != 2 || st.Done != 1 || st.Canceled != 1 {
		t.Fatalf("replayed counters submitted=%d done=%d canceled=%d, want 2/1/1", st.Submitted, st.Done, st.Canceled)
	}
	if ts, ok := st.Tenants["acme"]; !ok || ts.Submitted != 1 {
		t.Fatalf("tenant counters not rebuilt: %+v", st.Tenants)
	}
	srv := httptest.NewServer(jobs.NewHandler(s2))
	defer srv.Close()
	body := scrape(t, srv.URL)
	validateExposition(t, body)
	if got := sampleValue(t, body, "asyncd_jobs_done_total"); got != 1 {
		t.Fatalf("asyncd_jobs_done_total after restart = %v, want 1", got)
	}
	if got := sampleValue(t, body, "asyncd_jobs_submitted_total"); got != 2 {
		t.Fatalf("asyncd_jobs_submitted_total after restart = %v, want 2", got)
	}
}

// TestTraceEndpointAndPprof pins the live-observability endpoints: the
// per-job JSONL trace download and the pprof index.
func TestTraceEndpointAndPprof(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	id := postJob(t, srv.URL, gateSpec(gateTel, 63))
	expectStart(t, gateTel, 63)
	release(t, gateTel)
	waitState(t, s, id, jobs.StateDone)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + string(id) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	events := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("trace line %q not JSON: %v", sc.Text(), err)
		}
		if m["run"] != string(id) {
			t.Fatalf("trace line for run %v, want %s", m["run"], id)
		}
		ev, _ := m["event"].(string)
		events[ev] = true
	}
	for _, want := range []string{"queued", "dispatched", "done"} {
		if !events[want] {
			t.Fatalf("trace missing %q event; got %v", want, events)
		}
	}

	if resp, err := http.Get(srv.URL + "/v1/jobs/nope/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown-job trace status %d, want 404", resp.StatusCode)
		}
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s returned an empty body", path)
		}
	}
}

// TestRunStatsInStatus pins satellite coordination stats: a real solver run
// surfaces the coordinator's staleness histogram and per-worker waits
// through the job snapshot and its HTTP payload.
func TestRunStatsInStatus(t *testing.T) {
	s := newScheduler(t, jobs.Config{
		Engines:       1,
		EngineOptions: []async.Option{async.WithWorkers(2), async.WithPartitions(2)},
	})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	id, err := s.Submit(jobs.Spec{
		Algorithm:     "asgd",
		Dataset:       jobs.DatasetSpec{Name: "rcv1-like"},
		Step:          jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:       200,
		SnapshotEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if job.RunStats == nil {
		t.Fatal("terminal job carries no RunStats")
	}
	if job.RunStats.Updates < 200 {
		t.Fatalf("RunStats.Updates = %d, want >= 200", job.RunStats.Updates)
	}
	if job.RunStats.Staleness.Count <= 0 {
		t.Fatalf("staleness histogram empty: %+v", job.RunStats.Staleness)
	}
	if job.RunStats.Wait.Workers != 2 {
		t.Fatalf("wait summary workers = %d, want 2", job.RunStats.Wait.Workers)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + string(id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		RunStats *async.RunStats `json:"run_stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.RunStats == nil || payload.RunStats.Staleness.Count <= 0 {
		t.Fatalf("HTTP status payload missing run_stats: %+v", payload.RunStats)
	}
}
