package jobs_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/async"
	"repro/async/jobs"
)

// gateObjective backs the normalization-equivalence checks: jobs submit and
// park without running real optimization.
var gateObjective = newGate("gate-objective")

func init() {
	if err := async.Register(gateObjective); err != nil {
		panic(err)
	}
}

// TestObjectiveAliasNormalization: the deprecated flat "loss" field and the
// structured objective normalize to the same merged objective, and
// loss-name aliases do not conflict with their canonical spelling.
func TestObjectiveAliasNormalization(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	ds := jobs.DatasetSpec{Name: "rcv1-like"}

	flat, err := s.Submit(jobs.Spec{Algorithm: gateObjective.name, Dataset: ds, Loss: "logistic"})
	if err != nil {
		t.Fatal(err)
	}
	structured, err := s.Submit(jobs.Spec{
		Algorithm: gateObjective.name, Dataset: ds,
		Objective: async.Objective{Loss: "logistic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := s.Submit(jobs.Spec{
		Algorithm: gateObjective.name, Dataset: ds,
		Loss:      "ls", // canonical alias of the structured spelling: no conflict
		Objective: async.Objective{Loss: "least-squares", L2: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}

	jf, _ := s.Status(flat)
	js, _ := s.Status(structured)
	if jf.Spec.Objective != js.Spec.Objective {
		t.Fatalf("alias and structured submissions normalized differently: %+v vs %+v",
			jf.Spec.Objective, js.Spec.Objective)
	}
	if jf.Spec.Objective.Key() != js.Spec.Objective.Key() {
		t.Fatalf("objective keys differ: %q vs %q", jf.Spec.Objective.Key(), js.Spec.Objective.Key())
	}
	ja, _ := s.Status(aliased)
	if ja.Spec.Objective.L2 != 0.01 {
		t.Fatalf("aliased submission lost its penalty: %+v", ja.Spec.Objective)
	}

	for _, id := range []jobs.ID{flat, structured, aliased} {
		s.Cancel(id)
	}
}

// TestObjectiveSubmitRejections pins the submission-time gate: objectives a
// solver cannot faithfully optimize are rejected with a pointed error
// instead of silently dropping terms.
func TestObjectiveSubmitRejections(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	ds := jobs.DatasetSpec{Name: "rcv1-like"}
	cases := []struct {
		name string
		spec jobs.Spec
		want string
	}{
		{"conflicting loss names",
			jobs.Spec{Algorithm: "asgd", Dataset: ds, Loss: "logistic",
				Objective: async.Objective{Loss: "least-squares"}},
			"conflicts"},
		{"l1 on saga",
			jobs.Spec{Algorithm: "saga", Dataset: ds,
				Objective: async.Objective{L2: 0.01, L1: 0.001}},
			"no proximal step"},
		{"l1 on svrg",
			jobs.Spec{Algorithm: "svrg", Dataset: ds,
				Objective: async.Objective{L1: 0.001}},
			"no proximal step"},
		{"penalty on admm",
			jobs.Spec{Algorithm: "admm", Dataset: ds,
				Objective: async.Objective{L2: 0.01}},
			"ignores penalty terms"},
		{"penalty on bcd",
			jobs.Spec{Algorithm: "bcd", Dataset: ds,
				Objective: async.Objective{L2: 0.01}},
			"ignores penalty terms"},
		{"auto_fstar objective mismatch",
			jobs.Spec{Algorithm: "admm", Dataset: ds, AutoFStar: true,
				Objective: async.Objective{Loss: "logistic"}},
			"auto_fstar"},
		{"unknown loss",
			jobs.Spec{Algorithm: "asgd", Dataset: ds,
				Objective: async.Objective{Loss: "hinge"}},
			"unknown objective loss"},
		{"negative l1",
			jobs.Spec{Algorithm: "asgd", Dataset: ds,
				Objective: async.Objective{L1: -0.5}},
			"l1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit(tc.spec)
			if err == nil {
				t.Fatalf("submission accepted: %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestElasticNetJobsEndToEnd runs real elastic-net solves through the
// scheduler for every prox-capable solver family and asserts the ℓ1 term
// actually produced a sparse final model (exact zero coordinates).
func TestElasticNetJobsEndToEnd(t *testing.T) {
	if _, err := async.Lookup("cd"); err != nil {
		t.Fatalf("cd not registered: %v", err)
	}
	if _, err := async.Lookup("gcg"); err != nil {
		t.Fatalf("gcg not registered: %v", err)
	}
	s := newScheduler(t, jobs.Config{Engines: 1})
	for _, algo := range []string{"cd", "gcg", "asgd"} {
		t.Run(algo, func(t *testing.T) {
			id, err := s.Submit(jobs.Spec{
				Algorithm: algo,
				Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
				Step:      jobs.StepSpec{Kind: "const", A: 0.02},
				Objective: async.Objective{Loss: "least-squares", L2: 0.01, L1: 0.01},
				Updates:   60, SnapshotEvery: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, s, id, jobs.StateDone)
			res, err := s.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			zeros, nonzeros := 0, 0
			for _, x := range res.W {
				if x == 0 {
					zeros++
				} else {
					nonzeros++
				}
			}
			if zeros == 0 {
				t.Fatalf("%s: ℓ1 objective produced no exact-zero coordinates", algo)
			}
			if nonzeros == 0 {
				t.Fatalf("%s: solve collapsed to the all-zero model", algo)
			}
		})
	}
}

// TestHTTPElasticNetSubmit covers the wire path: a structured composite
// objective submitted over POST /v1/jobs round-trips through JSON, runs a
// cd solve, and an invalid objective is a 400, not a queued failure.
func TestHTTPElasticNetSubmit(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	id := postJob(t, srv.URL, jobs.Spec{
		Algorithm: "cd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Objective: async.Objective{Loss: "least-squares", L2: 0.02, L1: 0.005},
		Updates:   30, SnapshotEvery: 10,
	})
	job := waitState(t, s, id, jobs.StateDone)
	if job.Spec.Objective.L1 != 0.005 {
		t.Fatalf("objective lost over the wire: %+v", job.Spec.Objective)
	}

	bad, err := json.Marshal(jobs.Spec{
		Algorithm: "saga",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Objective: async.Objective{L1: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ℓ1-on-saga submission: status %d, want 400", resp.StatusCode)
	}
}

// FuzzObjectiveSpecDecode fuzzes the wire decode of the structured
// objective: any JSON that unmarshals and validates must also resolve to a
// working loss with a stable canonical key.
func FuzzObjectiveSpecDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"loss":"logistic","l2":0.01,"l1":0.001}`,
		`{"loss":"ls"}`,
		`{"loss":"least-squares","l2":1}`,
		`{"loss":"hinge"}`,
		`{"l1":-1}`,
		`{"l2":1e308,"l1":1e308}`,
		`{"loss":"LOGISTIC","l1":0.5}`,
		`not json`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var o async.Objective
		if err := json.Unmarshal(data, &o); err != nil {
			t.Skip()
		}
		if err := o.Validate(); err != nil {
			return // invalid specs must only error, never panic
		}
		l, err := o.Resolve()
		if err != nil {
			t.Fatalf("validated objective %+v failed to resolve: %v", o, err)
		}
		if l.Name() == "" {
			t.Fatalf("objective %+v resolved to a nameless loss", o)
		}
		if k := o.Key(); k == "" || k != o.Key() {
			t.Fatalf("objective %+v has unstable cache key", o)
		}
	})
}
