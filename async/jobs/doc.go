// Package jobs is the multi-tenant job-scheduling layer over the ASYNC
// engine: a Scheduler owns a bounded pool of async.Engines and a bounded
// priority queue of optimization jobs, so many callers can share a warm
// cluster instead of spinning an engine per run — the engine serves one
// Solve at a time (async.ErrBusy), the scheduler serves as many as fit the
// queue.
//
// # Model
//
// A Job is one Solve described declaratively by a Spec: a registry
// algorithm name (sgd, asgd, saga, asaga, svrg, admm, bcd, ...), a named
// synthetic dataset from the catalog (rcv1-like, mnist8m-like,
// epsilon-like) at a scale, a barrier policy (ASP, BSP, SSP), a step
// schedule, and a budget. Specs are plain JSON-marshalable data, so the
// same type drives both the Go API and the HTTP API (NewHandler).
//
//	s, _ := jobs.New(jobs.Config{Engines: 2})
//	defer s.Close()
//	id, _ := s.Submit(jobs.Spec{
//		Algorithm: "asgd",
//		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
//		Updates:   400,
//	})
//	job, _ := s.Wait(ctx, id)
//
// # Scheduling
//
// Submit enqueues (higher Priority first, FIFO within a priority) and
// returns immediately with a JobID; ErrQueueFull is the backpressure
// signal. Engines spin up lazily, up to Config.Engines. Dispatch prefers
// dataset affinity: a queued job whose dataset an idle engine already
// holds is routed to that engine ahead of the queue head, so repeated
// jobs against the same dataset skip redistribution. Affinity never
// crosses a priority boundary and jumps at most a few times past the same
// head job, so neither priorities nor FIFO fairness are starved. When no
// affinity match exists, the head job takes an empty engine, a freshly
// spun-up one, or the least-recently-used idle engine (whose dataset is
// then Released and swapped).
//
// # Lifecycle and observation
//
// Jobs move queued → running → done | failed | canceled. Cancel aborts a
// queued job before it ever starts and interrupts a running one through
// its per-job context, which the engine threads into barrier waits and
// collects. Status/List return point-in-time snapshots, Wait blocks for a
// terminal state, and Subscribe streams Events (state transitions plus
// per-snapshot progress: updates done, current suboptimality, elapsed
// time) with full history replay. Terminal jobs are retained — result
// included — until Config.Retention evicts the oldest.
package jobs
