package jobs_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/async"
	"repro/async/jobs"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
)

// flakySolver fails its first failN runs with a transient error, then
// succeeds — the shape of an OOM'd worker or a dropped connection that a
// retry from the last checkpoint absorbs.
type flakySolver struct {
	name     string
	failN    int32
	attempts atomic.Int32
}

func (f *flakySolver) Name() string { return f.name }

func (f *flakySolver) Solve(ctx context.Context, e *async.Engine, d *dataset.Dataset, opts async.SolveOptions) (*async.Result, error) {
	if f.attempts.Add(1) <= f.failN {
		return nil, errors.New("transient engine failure")
	}
	return &async.Result{
		Trace: &metrics.Trace{
			Algorithm: f.name,
			Dataset:   d.Name,
			Points:    []metrics.TracePoint{{Updates: int64(opts.Params.Updates)}},
		},
		W: la.NewVec(d.NumCols()),
	}, nil
}

var (
	flakyOnce   = &flakySolver{name: "flaky-once", failN: 1}
	flakyAlways = &flakySolver{name: "flaky-always", failN: 1 << 30}
)

func init() {
	for _, s := range []async.Solver{flakyOnce, flakyAlways} {
		if err := async.Register(s); err != nil {
			panic(err)
		}
	}
}

func flakySpec(name string, tag int) jobs.Spec {
	return jobs.Spec{
		Algorithm: name,
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Updates:   tag,
	}
}

// TestRetryTransientFailure: the default retry budget (MaxRetries 1)
// absorbs one transient run failure — the job re-queues, re-runs, and
// finishes Done with the retry counted in Stats and the job snapshot.
func TestRetryTransientFailure(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	id, err := s.Submit(flakySpec("flaky-once", 111))
	if err != nil {
		t.Fatal(err)
	}
	job := waitState(t, s, id, jobs.StateDone)
	if job.Retries != 1 {
		t.Fatalf("job snapshot retries %d, want 1", job.Retries)
	}
	if st := s.Stats(); st.Retries != 1 || st.Failed != 0 {
		t.Fatalf("stats retries %d failed %d, want 1 and 0", st.Retries, st.Failed)
	}
}

// TestRetryBudgetExhausted: a persistently failing run fails for real once
// the budget is spent — MaxRetries 2 means three attempts total.
func TestRetryBudgetExhausted(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	before := flakyAlways.attempts.Load()
	spec := flakySpec("flaky-always", 112)
	spec.MaxRetries = 2
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := waitState(t, s, id, jobs.StateFailed)
	if job.Retries != 2 {
		t.Fatalf("job snapshot retries %d, want 2", job.Retries)
	}
	if got := flakyAlways.attempts.Load() - before; got != 3 {
		t.Fatalf("solver ran %d times, want 3 (1 + 2 retries)", got)
	}
}

// TestRetryDisabled: MaxRetries -1 turns retries off — the first transient
// failure is terminal.
func TestRetryDisabled(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1})
	before := flakyAlways.attempts.Load()
	spec := flakySpec("flaky-always", 113)
	spec.MaxRetries = -1
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := waitState(t, s, id, jobs.StateFailed)
	if job.Retries != 0 {
		t.Fatalf("job snapshot retries %d, want 0", job.Retries)
	}
	if got := flakyAlways.attempts.Load() - before; got != 1 {
		t.Fatalf("solver ran %d times, want exactly 1", got)
	}
}
