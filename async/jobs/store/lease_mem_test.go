package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestMemLeaseLifecycle drives the LeaseStore surface of the in-memory
// store through the replica scheduler's protocol: claim, foreign-claim
// rejection, renew, epoch fencing, release, and re-claim with a bumped
// epoch — then every operation's ErrClosed path.
func TestMemLeaseLifecycle(t *testing.T) {
	m := NewMem()
	const job = "job-000001"
	l, err := m.Claim(job, "r1", time.Minute)
	if err != nil || l.Owner != "r1" || l.Epoch != 1 {
		t.Fatalf("claim: %+v, %v", l, err)
	}
	if _, err := m.Claim(job, "r2", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("foreign claim: %v, want ErrLeaseHeld", err)
	}
	if _, err := m.Renew(job, "r1", l.Epoch, time.Minute); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if _, err := m.Renew(job, "r2", l.Epoch, time.Minute); !errors.Is(err, ErrFenced) {
		t.Fatalf("foreign renew: %v, want ErrFenced", err)
	}
	ls, err := m.Leases()
	if err != nil || len(ls) != 1 || ls[0].Job != job || ls[0].Owner != "r1" {
		t.Fatalf("leases: %+v, %v", ls, err)
	}
	if err := m.Release(job, "r1", l.Epoch+5); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale release: %v, want ErrFenced", err)
	}
	if err := m.Release(job, "r1", l.Epoch); err != nil {
		t.Fatal(err)
	}
	// releasing an already-cleared lease is a documented no-op
	if err := m.Release(job, "r1", l.Epoch); err != nil {
		t.Fatal(err)
	}
	// the next claim's epoch moves past every epoch ever observed, so a
	// resurrected previous owner can never pass the fence again
	l2, err := m.Claim(job, "r2", time.Minute)
	if err != nil || l2.Epoch != l.Epoch+1 {
		t.Fatalf("reclaim: %+v, %v (want epoch %d)", l2, err, l.Epoch+1)
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Claim(job, "r1", time.Minute); !errors.Is(err, ErrClosed) {
		t.Fatalf("claim after close: %v, want ErrClosed", err)
	}
	if _, err := m.Renew(job, "r2", l2.Epoch, time.Minute); !errors.Is(err, ErrClosed) {
		t.Fatalf("renew after close: %v, want ErrClosed", err)
	}
	if err := m.Release(job, "r2", l2.Epoch); !errors.Is(err, ErrClosed) {
		t.Fatalf("release after close: %v, want ErrClosed", err)
	}
	if _, err := m.Leases(); !errors.Is(err, ErrClosed) {
		t.Fatalf("leases after close: %v, want ErrClosed", err)
	}
	if _, err := m.ReplaySince(Watermark{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay-since after close: %v, want ErrClosed", err)
	}
}

// TestMemReplaySince pins the watermark protocol on the in-memory store: a
// tail replay sees only records past the watermark, a callback error
// propagates, and a compaction bumps the generation so stale watermarks
// restart from the rewritten beginning.
func TestMemReplaySince(t *testing.T) {
	m := NewMem()
	for i := 1; i <= 3; i++ {
		if err := m.Append(testRecord(uint64(i), TypeSubmitted, fmt.Sprintf("job-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	w, err := m.ReplaySince(Watermark{}, func(Record) error { n++; return nil })
	if err != nil || n != 3 {
		t.Fatalf("full replay saw %d records, %v", n, err)
	}

	if err := m.Append(testRecord(4, TypeDispatched, "job-000001")); err != nil {
		t.Fatal(err)
	}
	n = 0
	var last Record
	w2, err := m.ReplaySince(w, func(r Record) error { n++; last = r; return nil })
	if err != nil || n != 1 || last.Type != TypeDispatched {
		t.Fatalf("tail replay: n=%d last=%+v, %v", n, last, err)
	}

	boom := errors.New("boom")
	if _, err := m.ReplaySince(w, func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("replay error: %v, want boom", err)
	}

	if err := m.Compact([]*Record{testRecord(1, TypeSubmitted, "job-000001")}); err != nil {
		t.Fatal(err)
	}
	n = 0
	if _, err := m.ReplaySince(w2, func(Record) error { n++; return nil }); err != nil || n == 0 {
		t.Fatalf("post-compact replay from a stale watermark saw %d records, %v", n, err)
	}
}
