package faulty

import (
	"errors"
	"testing"
	"time"

	"repro/async/jobs/store"
	"repro/internal/la"
	"repro/internal/opt"
)

func rec(seq uint64, typ store.Type, job string) *store.Record {
	r := &store.Record{Type: typ, Job: job, Time: 1700000000_000000000 + int64(seq), JobSeq: int64(seq)}
	if typ == store.TypeSubmitted {
		r.Spec = []byte(`{"algorithm":"asgd","dataset":{"name":"rcv1-like"}}`)
	}
	return r
}

// TestAppendFaultOrdinals pins the 1-based operation counting: the Nth
// append fails before the write, the drop-ack append fails after a durable
// write, and the Nth sync fails — everything else passes through.
func TestAppendFaultOrdinals(t *testing.T) {
	inner := store.NewMem()
	f := Wrap(inner, Plan{FailAppendN: 1, DropAckAppendN: 2, FailSyncN: 1})

	if err := f.Append(rec(1, store.TypeSubmitted, "job-000001")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append 1: %v, want ErrInjected", err)
	}
	count := func() (n int) {
		if err := f.Replay(func(store.Record) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count(); n != 0 {
		t.Fatalf("failed append left %d records", n)
	}

	// the dropped ack is the crash window: the error reaches the caller
	// but the record is durably in the log
	if err := f.Append(rec(2, store.TypeSubmitted, "job-000002")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append 2: %v, want ErrInjected", err)
	}
	if n := count(); n != 1 {
		t.Fatalf("drop-ack append wrote %d records, want 1", n)
	}

	if err := f.Append(rec(3, store.TypeSubmitted, "job-000003")); err != nil {
		t.Fatalf("append 3: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1: %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	if got := f.Injected(); got != 3 {
		t.Fatalf("Injected() = %d, want 3", got)
	}
}

// TestProbabilisticFaultsReplayFromSeed: two wrappers with equal plans and
// seeds must inject on exactly the same append ordinals — the property the
// chaos harness leans on to replay a failing run bit-for-bit.
func TestProbabilisticFaultsReplayFromSeed(t *testing.T) {
	plan := Plan{Seed: 9, AppendFailProb: 0.4}
	a := Wrap(store.NewMem(), plan)
	b := Wrap(store.NewMem(), plan)
	var injected int
	for i := 1; i <= 40; i++ {
		errA := a.Append(rec(uint64(i), store.TypeSubmitted, "job-000001"))
		errB := b.Append(rec(uint64(i), store.TypeSubmitted, "job-000001"))
		if errors.Is(errA, ErrInjected) != errors.Is(errB, ErrInjected) {
			t.Fatalf("append %d: wrappers diverged (%v vs %v)", i, errA, errB)
		}
		if errors.Is(errA, ErrInjected) {
			injected++
		}
	}
	if injected == 0 || injected == 40 {
		t.Fatalf("probabilistic plan injected %d/40 — expected a mix", injected)
	}
}

// TestStallAppend: the stalled ordinal sleeps for StallFor before the
// write, the fault window a lease TTL is meant to fence.
func TestStallAppend(t *testing.T) {
	f := Wrap(store.NewMem(), Plan{StallAppendN: 1, StallFor: 30 * time.Millisecond})
	start := time.Now()
	if err := f.Append(rec(1, store.TypeSubmitted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("stalled append returned in %v, want >= 30ms", took)
	}
}

// TestPauseGatesEveryOperation: a paused wrapper blocks operations until
// Resume — the stop-the-world replica failure mode.
func TestPauseGatesEveryOperation(t *testing.T) {
	f := Wrap(store.NewMem(), Plan{})
	f.Pause()
	done := make(chan error, 1)
	go func() { done <- f.Append(rec(1, store.TypeSubmitted, "job-000001")) }()
	select {
	case err := <-done:
		t.Fatalf("append completed while paused: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	f.Resume()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDelegatedSurface drives the pass-through methods against a real Mem
// store so the wrapper is substitutable anywhere a LeaseStore is.
func TestDelegatedSurface(t *testing.T) {
	f := Wrap(store.NewMem(), Plan{})
	const job = "job-000001"
	if err := f.Append(rec(1, store.TypeSubmitted, job)); err != nil {
		t.Fatal(err)
	}

	l, err := f.Claim(job, "r1", time.Minute)
	if err != nil || l.Owner != "r1" {
		t.Fatalf("claim: %+v, %v", l, err)
	}
	if _, err := f.Renew(job, "r1", l.Epoch, time.Minute); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if ls, err := f.Leases(); err != nil || len(ls) != 1 {
		t.Fatalf("leases: %+v, %v", ls, err)
	}
	var n int
	if _, err := f.ReplaySince(store.Watermark{}, func(store.Record) error { n++; return nil }); err != nil || n == 0 {
		t.Fatalf("replay-since saw %d, %v", n, err)
	}
	if err := f.Release(job, "r1", l.Epoch); err != nil {
		t.Fatalf("release: %v", err)
	}

	cp := &opt.Checkpoint{Algorithm: "asgd", W: la.NewVec(4), Updates: 10}
	if err := f.SaveCheckpoint(job, 1, cp); err != nil {
		t.Fatal(err)
	}
	back, err := f.LoadCheckpoint(job, 1)
	if err != nil || back.Updates != 10 {
		t.Fatalf("checkpoint round trip: %+v, %v", back, err)
	}
	if err := f.DropJob(job); err != nil {
		t.Fatal(err)
	}
	if err := f.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if m := f.Metrics(); m.Compactions != 1 {
		t.Fatalf("metrics after compact: %+v", m)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornAppendArmsInnerFailpoint: wrapping a shared store with
// TornAppendN arms its crash failpoint, so the Nth append dies mid-record
// like a kill -9 and the handle goes dead afterwards.
func TestTornAppendArmsInnerFailpoint(t *testing.T) {
	w, err := store.OpenShared(t.TempDir(), "r1", store.SharedOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	f := Wrap(w, Plan{TornAppendN: 2})
	if err := f.Append(rec(1, store.TypeSubmitted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(rec(2, store.TypeDispatched, "job-000001")); err == nil {
		t.Fatal("torn append reported success")
	}
	if err := f.Append(rec(3, store.TypeDispatched, "job-000001")); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("append after torn write: %v, want ErrClosed", err)
	}
}
