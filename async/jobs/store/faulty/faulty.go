// Package faulty wraps a lease-capable store with deterministic,
// seed-driven fault injection for chaos testing: fail/stall/torn-write on
// the Nth append, dropped acks, fsync errors, and whole-replica pauses
// that force lease expiry. Every fault fires at an exact operation count
// (or from a seeded PRNG), so a failing chaos run replays bit-for-bit from
// its seed.
package faulty

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/async/jobs/store"
	"repro/internal/opt"
)

// ErrInjected is returned by operations a Plan chose to fail. It is
// distinct from real store errors so tests can assert the failure path
// they provoked is the one that fired.
var ErrInjected = errors.New("faulty: injected store error")

// Plan describes which faults fire and when. All counts are 1-based
// operation ordinals on this wrapper; zero disables the fault.
type Plan struct {
	// Seed drives the probabilistic faults. Two wrappers with equal plans
	// and seeds inject identically.
	Seed int64
	// FailAppendN makes the Nth append return ErrInjected without writing.
	FailAppendN int64
	// DropAckAppendN makes the Nth append write durably but still return
	// ErrInjected — the "ack lost" crash window.
	DropAckAppendN int64
	// TornAppendN tears the Nth append mid-record via the inner store's
	// crash failpoint (the store goes dead afterwards, like kill -9).
	TornAppendN int64
	// StallAppendN stalls the Nth append for StallFor before performing it
	// (a hung disk; with StallFor past the lease TTL, a lease-loss window).
	StallAppendN int64
	StallFor     time.Duration
	// AppendFailProb fails each append independently with this probability,
	// drawn from Seed.
	AppendFailProb float64
	// FailSyncN makes the Nth Sync return ErrInjected.
	FailSyncN int64
}

// failpointer is the crash-failpoint surface WAL and Shared both expose.
type failpointer interface{ FailAfterAppends(n int64) }

// Store wraps an inner LeaseStore with the Plan's faults. It implements
// store.LeaseStore; Pause/Resume additionally freeze every operation to
// simulate a partitioned or GC-stalled replica.
type Store struct {
	inner store.LeaseStore
	plan  Plan

	mu       sync.Mutex
	cond     *sync.Cond
	paused   bool
	rng      *rand.Rand
	appends  int64
	syncs    int64
	injected int64
}

// Wrap builds the fault-injecting wrapper around inner. If the plan tears
// an append and inner exposes FailAfterAppends, the failpoint is armed
// here.
func Wrap(inner store.LeaseStore, plan Plan) *Store {
	f := &Store{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
	f.cond = sync.NewCond(&f.mu)
	if plan.TornAppendN > 0 {
		if fp, ok := inner.(failpointer); ok {
			fp.FailAfterAppends(plan.TornAppendN - 1)
		}
	}
	return f
}

// Pause freezes the wrapper: every subsequent operation blocks until
// Resume. A paused replica cannot renew its leases — exactly the
// partition/stop-the-world failure leases exist to fence.
func (f *Store) Pause() {
	f.mu.Lock()
	f.paused = true
	f.mu.Unlock()
}

// Resume unfreezes the wrapper and wakes blocked operations.
func (f *Store) Resume() {
	f.mu.Lock()
	f.paused = false
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Injected reports how many operations the plan failed so far.
func (f *Store) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// gate blocks while paused.
func (f *Store) gate() {
	f.mu.Lock()
	for f.paused {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// appendFault decides the current append's fate: returns (stall, drop,
// fail) where fail short-circuits before the write and drop fails after
// it.
func (f *Store) appendFault() (stall bool, drop bool, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.appends++
	n := f.appends
	if f.plan.AppendFailProb > 0 && f.rng.Float64() < f.plan.AppendFailProb {
		f.injected++
		return false, false, true
	}
	if n == f.plan.FailAppendN {
		f.injected++
		return false, false, true
	}
	if n == f.plan.DropAckAppendN {
		f.injected++
		return n == f.plan.StallAppendN, true, false
	}
	return n == f.plan.StallAppendN, false, false
}

// Append applies the plan's append faults around the inner append.
func (f *Store) Append(rec *store.Record) error {
	f.gate()
	stall, drop, fail := f.appendFault()
	if stall && f.plan.StallFor > 0 {
		time.Sleep(f.plan.StallFor)
		f.gate() // a stalled replica may have been paused meanwhile
	}
	if fail {
		return ErrInjected
	}
	if err := f.inner.Append(rec); err != nil {
		return err
	}
	if drop {
		return ErrInjected
	}
	return nil
}

// Sync applies FailSyncN around the inner fsync.
func (f *Store) Sync() error {
	f.gate()
	f.mu.Lock()
	f.syncs++
	fail := f.syncs == f.plan.FailSyncN
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Sync()
}

// The rest of the surface delegates through the pause gate unchanged.

func (f *Store) Replay(fn func(store.Record) error) error { f.gate(); return f.inner.Replay(fn) }

func (f *Store) SaveCheckpoint(job string, dispatchSeq int64, cp *opt.Checkpoint) error {
	f.gate()
	return f.inner.SaveCheckpoint(job, dispatchSeq, cp)
}

func (f *Store) LoadCheckpoint(job string, dispatchSeq int64) (*opt.Checkpoint, error) {
	f.gate()
	return f.inner.LoadCheckpoint(job, dispatchSeq)
}

func (f *Store) DropJob(job string) error { f.gate(); return f.inner.DropJob(job) }

func (f *Store) Compact(snapshot []*store.Record) error { f.gate(); return f.inner.Compact(snapshot) }

func (f *Store) Metrics() store.Metrics { return f.inner.Metrics() }

func (f *Store) Close() error { return f.inner.Close() }

func (f *Store) Claim(job, owner string, ttl time.Duration) (store.Lease, error) {
	f.gate()
	return f.inner.Claim(job, owner, ttl)
}

func (f *Store) Renew(job, owner string, epoch int64, ttl time.Duration) (store.Lease, error) {
	f.gate()
	return f.inner.Renew(job, owner, epoch, ttl)
}

func (f *Store) Release(job, owner string, epoch int64) error {
	f.gate()
	return f.inner.Release(job, owner, epoch)
}

func (f *Store) Leases() ([]store.Lease, error) { f.gate(); return f.inner.Leases() }

func (f *Store) ReplaySince(w store.Watermark, fn func(store.Record) error) (store.Watermark, error) {
	f.gate()
	return f.inner.ReplaySince(w, fn)
}
