package store

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/opt"
)

// Mem is an in-memory Store: the same append/replay/compact surface as WAL
// with no disk under it. It backs scheduler-store integration tests and
// demonstrates that the scheduler depends only on the seam; it survives a
// scheduler restart (hand the same *Mem to the next one) but not a process
// death. Mem is also a LeaseStore — several schedulers can share one *Mem
// with lease-fenced claiming, which is what the deterministic chaos tests
// run on.
type Mem struct {
	mu      sync.Mutex
	records []Record
	spills  map[string][]byte // job\x00dispatchSeq → encoded checkpoint
	seq     uint64
	gen     uint64 // bumped by Compact; versions ReplaySince watermarks
	lt      *leaseTable
	appends int64
	since   int64
	compact int64
	nspills int64
	claims  int64
	renews  int64
	fenced  int64
	closed  bool
}

// NewMem builds an empty in-memory store.
func NewMem() *Mem { return &Mem{spills: map[string][]byte{}, lt: newLeaseTable()} }

func spillKey(job string, dispatchSeq int64) string {
	return fmt.Sprintf("%s\x00%d", job, dispatchSeq)
}

// Replay streams the held records in order.
func (m *Mem) Replay(fn func(Record) error) error {
	m.mu.Lock()
	recs := append([]Record(nil), m.records...)
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Append logs one record, fencing ownership-asserting records against the
// lease table.
func (m *Mem) Append(rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if err := m.lt.fence(rec, time.Now()); err != nil {
		m.fenced++
		walFencedAppends.Inc()
		return err
	}
	m.appendLocked(rec)
	return nil
}

// appendLocked assigns the next seq and applies the record (lease table
// included). Fencing is the caller's job.
func (m *Mem) appendLocked(rec *Record) {
	m.seq++
	rec.Seq = m.seq
	m.records = append(m.records, *rec)
	m.lt.apply(rec)
	m.appends++
	m.since++
}

// SaveCheckpoint spills an encoded copy keyed by (job, dispatchSeq).
func (m *Mem) SaveCheckpoint(job string, dispatchSeq int64, cp *opt.Checkpoint) error {
	var buf bytes.Buffer
	if err := opt.SaveCheckpoint(&buf, cp); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for k := range m.spills {
		if len(k) > len(job) && k[:len(job)] == job && k[len(job)] == 0 {
			delete(m.spills, k)
		}
	}
	m.spills[spillKey(job, dispatchSeq)] = buf.Bytes()
	m.nspills++
	return nil
}

// LoadCheckpoint decodes the spill keyed by (job, dispatchSeq).
func (m *Mem) LoadCheckpoint(job string, dispatchSeq int64) (*opt.Checkpoint, error) {
	m.mu.Lock()
	b, ok := m.spills[spillKey(job, dispatchSeq)]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: no spill for %s@%d", job, dispatchSeq)
	}
	return opt.LoadCheckpoint(bytes.NewReader(b))
}

// DropJob removes the job's spills.
func (m *Mem) DropJob(job string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for k := range m.spills {
		if len(k) > len(job) && k[:len(job)] == job && k[len(job)] == 0 {
			delete(m.spills, k)
		}
	}
	return nil
}

// Compact replaces the record list with snapshot and drops spills of jobs
// it no longer mentions. Lease state survives the rewrite: the table is
// re-serialized onto the new log so claims and epoch high-waters are not
// lost.
func (m *Mem) Compact(snapshot []*Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	snapshot = append(snapshot, m.lt.snapshotRecords(time.Now().UnixNano())...)
	keep := make(map[string]bool, len(snapshot))
	m.records = m.records[:0]
	for i, rec := range snapshot {
		rec.Seq = uint64(i + 1)
		m.records = append(m.records, *rec)
		keep[rec.Job] = true
	}
	m.seq = uint64(len(snapshot))
	m.gen++
	m.since = 0
	m.compact++
	m.appends += int64(len(snapshot))
	for k := range m.spills {
		job := k
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				job = k[:i]
				break
			}
		}
		if !keep[job] {
			delete(m.spills, k)
		}
	}
	return nil
}

// Sync is a no-op for the in-memory store.
func (m *Mem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Metrics snapshots the counters.
func (m *Mem) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Appends:             m.appends,
		AppendsSinceCompact: m.since,
		Compactions:         m.compact,
		CheckpointSpills:    m.nspills,
		ReplayedRecords:     int64(len(m.records)),
		LeaseClaims:         m.claims,
		LeaseRenewals:       m.renews,
		LeasesHeld:          int64(len(m.lt.leases)),
		FencedAppends:       m.fenced,
	}
}

// Claim acquires the job's lease for owner (LeaseStore).
func (m *Mem) Claim(job, owner string, ttl time.Duration) (Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Lease{}, ErrClosed
	}
	l, err := m.lt.claim(job, owner, ttl, time.Now())
	if err != nil {
		return Lease{}, err
	}
	m.appendLocked(&Record{
		Type: TypeClaimed, Job: job, Time: time.Now().UnixNano(),
		Owner: l.Owner, Epoch: l.Epoch, ExpiresAt: l.ExpiresAt,
	})
	m.claims++
	walLeaseClaims.Inc()
	return l, nil
}

// Renew extends the caller's live lease (LeaseStore).
func (m *Mem) Renew(job, owner string, epoch int64, ttl time.Duration) (Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Lease{}, ErrClosed
	}
	l, err := m.lt.renew(job, owner, epoch, ttl, time.Now())
	if err != nil {
		m.fenced++
		walFencedAppends.Inc()
		return Lease{}, err
	}
	m.appendLocked(&Record{
		Type: TypeRenewed, Job: job, Time: time.Now().UnixNano(),
		Owner: owner, Epoch: epoch, ExpiresAt: l.ExpiresAt,
	})
	m.renews++
	walLeaseRenewals.Inc()
	return l, nil
}

// Release ends the caller's lease (LeaseStore).
func (m *Mem) Release(job, owner string, epoch int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	_, held, err := m.lt.release(job, owner, epoch)
	if err != nil {
		m.fenced++
		walFencedAppends.Inc()
		return err
	}
	if !held {
		return nil
	}
	m.appendLocked(&Record{
		Type: TypeReleased, Job: job, Time: time.Now().UnixNano(),
		Owner: owner, Epoch: epoch,
	})
	return nil
}

// Leases snapshots the lease table (LeaseStore).
func (m *Mem) Leases() ([]Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	return m.lt.snapshot(), nil
}

// ReplaySince streams records appended after the watermark (LeaseStore).
// A compaction bumps the generation and replays the rewritten log from its
// beginning.
func (m *Mem) ReplaySince(w Watermark, fn func(Record) error) (Watermark, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return w, ErrClosed
	}
	from := 0
	if w.Gen == m.gen && w.Seq <= uint64(len(m.records)) {
		from = int(w.Seq)
	}
	recs := append([]Record(nil), m.records[from:]...)
	out := Watermark{Gen: m.gen, Seq: m.seq}
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return w, err
		}
	}
	return out, nil
}

// Close marks the store closed; the held state stays replayable by a
// successor scheduler after Reopen.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Reopen clears the closed flag so a successor scheduler can recover from
// the held state (the in-memory analogue of re-opening a WAL directory).
func (m *Mem) Reopen() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = false
}
