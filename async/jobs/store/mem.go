package store

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/opt"
)

// Mem is an in-memory Store: the same append/replay/compact surface as WAL
// with no disk under it. It backs scheduler-store integration tests and
// demonstrates that the scheduler depends only on the seam; it survives a
// scheduler restart (hand the same *Mem to the next one) but not a process
// death.
type Mem struct {
	mu      sync.Mutex
	records []Record
	spills  map[string][]byte // job\x00dispatchSeq → encoded checkpoint
	seq     uint64
	appends int64
	since   int64
	compact int64
	nspills int64
	closed  bool
}

// NewMem builds an empty in-memory store.
func NewMem() *Mem { return &Mem{spills: map[string][]byte{}} }

func spillKey(job string, dispatchSeq int64) string {
	return fmt.Sprintf("%s\x00%d", job, dispatchSeq)
}

// Replay streams the held records in order.
func (m *Mem) Replay(fn func(Record) error) error {
	m.mu.Lock()
	recs := append([]Record(nil), m.records...)
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Append logs one record.
func (m *Mem) Append(rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.seq++
	rec.Seq = m.seq
	m.records = append(m.records, *rec)
	m.appends++
	m.since++
	return nil
}

// SaveCheckpoint spills an encoded copy keyed by (job, dispatchSeq).
func (m *Mem) SaveCheckpoint(job string, dispatchSeq int64, cp *opt.Checkpoint) error {
	var buf bytes.Buffer
	if err := opt.SaveCheckpoint(&buf, cp); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for k := range m.spills {
		if len(k) > len(job) && k[:len(job)] == job && k[len(job)] == 0 {
			delete(m.spills, k)
		}
	}
	m.spills[spillKey(job, dispatchSeq)] = buf.Bytes()
	m.nspills++
	return nil
}

// LoadCheckpoint decodes the spill keyed by (job, dispatchSeq).
func (m *Mem) LoadCheckpoint(job string, dispatchSeq int64) (*opt.Checkpoint, error) {
	m.mu.Lock()
	b, ok := m.spills[spillKey(job, dispatchSeq)]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: no spill for %s@%d", job, dispatchSeq)
	}
	return opt.LoadCheckpoint(bytes.NewReader(b))
}

// DropJob removes the job's spills.
func (m *Mem) DropJob(job string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for k := range m.spills {
		if len(k) > len(job) && k[:len(job)] == job && k[len(job)] == 0 {
			delete(m.spills, k)
		}
	}
	return nil
}

// Compact replaces the record list with snapshot and drops spills of jobs
// it no longer mentions.
func (m *Mem) Compact(snapshot []*Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	keep := make(map[string]bool, len(snapshot))
	m.records = m.records[:0]
	for i, rec := range snapshot {
		rec.Seq = uint64(i + 1)
		m.records = append(m.records, *rec)
		keep[rec.Job] = true
	}
	m.seq = uint64(len(snapshot))
	m.since = 0
	m.compact++
	m.appends += int64(len(snapshot))
	for k := range m.spills {
		job := k
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				job = k[:i]
				break
			}
		}
		if !keep[job] {
			delete(m.spills, k)
		}
	}
	return nil
}

// Sync is a no-op for the in-memory store.
func (m *Mem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Metrics snapshots the counters.
func (m *Mem) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Appends:             m.appends,
		AppendsSinceCompact: m.since,
		Compactions:         m.compact,
		CheckpointSpills:    m.nspills,
		ReplayedRecords:     int64(len(m.records)),
	}
}

// Close marks the store closed; the held state stays replayable by a
// successor scheduler after Reopen.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Reopen clears the closed flag so a successor scheduler can recover from
// the held state (the in-memory analogue of re-opening a WAL directory).
func (m *Mem) Reopen() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = false
}
