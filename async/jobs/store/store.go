package store

import (
	"errors"
	"time"

	"repro/internal/opt"
)

// ErrClosed is returned by operations on a closed (or crash-simulated)
// store.
var ErrClosed = errors.New("store: closed")

// Store is the durability seam the scheduler writes through. WAL is the
// single-node file implementation; Mem backs tests. A shared multi-replica
// backend (lease-based job claiming) implements the same surface.
//
// Append must make the record durable before returning (append-before-ack);
// SaveCheckpoint must durably spill the capture before the caller appends
// the record that references it. Replay yields the recovered records in log
// order. Compact atomically replaces the log with the given snapshot and
// garbage-collects checkpoints of jobs absent from it.
type Store interface {
	// Replay streams the recovered records in log order. It is called once,
	// before the first Append.
	Replay(fn func(Record) error) error
	// Append durably logs one transition, assigning rec.Seq.
	Append(rec *Record) error
	// SaveCheckpoint durably spills a capture keyed by (job, dispatchSeq).
	SaveCheckpoint(job string, dispatchSeq int64, cp *opt.Checkpoint) error
	// LoadCheckpoint loads the spill keyed by (job, dispatchSeq).
	LoadCheckpoint(job string, dispatchSeq int64) (*opt.Checkpoint, error)
	// DropJob removes a terminal job's spilled checkpoints (best effort).
	DropJob(job string) error
	// Compact atomically replaces the log with snapshot and deletes
	// checkpoints of jobs no snapshot record names.
	Compact(snapshot []*Record) error
	// Sync flushes and fsyncs any buffered state (graceful shutdown).
	Sync() error
	// Metrics snapshots the store's counters.
	Metrics() Metrics
	Close() error
}

// Metrics is a point-in-time snapshot of a store's counters, surfaced
// through the scheduler's /v1/metrics endpoint.
type Metrics struct {
	// Appends counts durably acknowledged records (lifetime, compaction
	// included).
	Appends int64 `json:"appends"`
	// AppendsSinceCompact counts records since the last compaction; the
	// scheduler's compaction trigger reads it.
	AppendsSinceCompact int64 `json:"appends_since_compact"`
	// Fsyncs and FsyncTotal measure the fsync latency the append path pays.
	Fsyncs     int64         `json:"fsyncs"`
	FsyncTotal time.Duration `json:"fsync_total_ns"`
	// SizeBytes is the current log size.
	SizeBytes int64 `json:"size_bytes"`
	// Compactions counts log rewrites.
	Compactions int64 `json:"compactions"`
	// CheckpointSpills counts durable checkpoint files written.
	CheckpointSpills int64 `json:"checkpoint_spills"`
	// ReplayedRecords is how many records the last open recovered.
	ReplayedRecords int64 `json:"replayed_records"`
	// TruncatedTail reports that the last open found (and cut) a torn or
	// corrupt log tail — expected after a crash mid-append.
	TruncatedTail bool `json:"truncated_tail,omitempty"`

	// Lease-layer counters (LeaseStore implementations only).
	LeaseClaims   int64 `json:"lease_claims,omitempty"`
	LeaseRenewals int64 `json:"lease_renewals,omitempty"`
	LeasesHeld    int64 `json:"leases_held,omitempty"`
	// FencedAppends counts mutations rejected with ErrFenced — each one is
	// a stale replica that tried to write after losing its lease.
	FencedAppends int64 `json:"fenced_appends,omitempty"`
}
