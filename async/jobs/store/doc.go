// Package store is the durability layer under the jobs scheduler: a
// write-ahead log of job lifecycle transitions plus per-job checkpoint
// spill files, so an asyncd restart — graceful or kill -9 — reconstructs
// the scheduler instead of losing every queued, running, and preempted
// job.
//
// # Append-before-ack invariant
//
// Every job lifecycle transition (submitted, dispatched, checkpointed,
// preempted, done, failed, canceled) is appended — and, unless the store
// was opened with NoSync, fsynced — BEFORE the transition is acknowledged
// to the caller. Submit in particular returns a job ID only after the
// submitted record is durable: a job the client was told about can never
// silently vanish across a restart. Transitions that have no external
// acknowledgement (dispatch, periodic checkpoints) are appended before
// the scheduler acts on them, so replay can only ever UNDER-state
// progress, never invent it: a crash between an action and its record
// replays the older state, which re-runs work rather than losing it.
//
// # Log layout
//
// The log is a single file (wal.log) of length-prefixed records in the
// wire-codec frame format:
//
//	[u32 BE frame length L][1-byte format][body][u32 BE CRC-32 (IEEE) of format+body]
//
// where L counts everything after the length prefix (format + body +
// CRC). The body is the compact binary encoding of one Record
// (cluster.BinWriter: varints, length-validated strings). The file opens
// with the magic "AWL1". Decode is length-validated before any
// allocation, and a record whose CRC, length, or body fails to verify
// ends the replay: Open recovers the longest valid prefix, truncates the
// torn tail, and continues appending from there — a kill -9 mid-append
// costs exactly the un-acked suffix, never the log.
//
// Checkpoints are not inlined in the log (they are ~dim-sized). Each
// capture spills to its own file, cp-<job>-<dispatchSeq>.ckpt, written
// to a temp name, fsynced, and renamed into place before the
// checkpointed record is appended; the record carries the dispatch
// sequence that keys the file. Replay therefore only trusts checkpoint
// files the log mentions — a spill that crashed before its record is
// ignored, and the job resumes from the previous durable capture.
//
// # Compaction contract
//
// The log grows by a handful of records per job; compaction rewrites it
// to the live set only. Compact takes a snapshot of records (rebuilt by
// the scheduler from its in-memory state: one submitted record per held
// job plus its current state-defining records), writes them to a fresh
// temp log, fsyncs, and atomically renames it over wal.log — a crash at
// any point leaves either the old log or the new one, never a mix.
// Checkpoint files for jobs absent from the snapshot are deleted after
// the rename. The scheduler triggers compaction every Config.CompactEvery
// appends and once after recovery; records evicted by the scheduler's
// retention limit simply stop appearing in snapshots.
//
// # Seam
//
// The scheduler depends only on the Store interface (append / replay /
// checkpoint spill / compact), so a shared multi-replica backend with
// lease-based claiming can slot in without touching the scheduler;
// WAL is the single-node file implementation and Mem is the in-memory
// implementation used by tests.
package store
