// Package store is the durability layer under the jobs scheduler: a
// write-ahead log of job lifecycle transitions plus per-job checkpoint
// spill files, so an asyncd restart — graceful or kill -9 — reconstructs
// the scheduler instead of losing every queued, running, and preempted
// job.
//
// # Append-before-ack invariant
//
// Every job lifecycle transition (submitted, dispatched, checkpointed,
// preempted, done, failed, canceled) is appended — and, unless the store
// was opened with NoSync, fsynced — BEFORE the transition is acknowledged
// to the caller. Submit in particular returns a job ID only after the
// submitted record is durable: a job the client was told about can never
// silently vanish across a restart. Transitions that have no external
// acknowledgement (dispatch, periodic checkpoints) are appended before
// the scheduler acts on them, so replay can only ever UNDER-state
// progress, never invent it: a crash between an action and its record
// replays the older state, which re-runs work rather than losing it.
//
// # Log layout
//
// The log is a single file (wal.log) of length-prefixed records in the
// wire-codec frame format:
//
//	[u32 BE frame length L][1-byte format][body][u32 BE CRC-32 (IEEE) of format+body]
//
// where L counts everything after the length prefix (format + body +
// CRC). The body is the compact binary encoding of one Record
// (cluster.BinWriter: varints, length-validated strings). The file opens
// with the magic "AWL1". Decode is length-validated before any
// allocation, and a record whose CRC, length, or body fails to verify
// ends the replay: Open recovers the longest valid prefix, truncates the
// torn tail, and continues appending from there — a kill -9 mid-append
// costs exactly the un-acked suffix, never the log.
//
// Checkpoints are not inlined in the log (they are ~dim-sized). Each
// capture spills to its own file, cp-<job>-<dispatchSeq>.ckpt, written
// to a temp name, fsynced, and renamed into place before the
// checkpointed record is appended; the record carries the dispatch
// sequence that keys the file. Replay therefore only trusts checkpoint
// files the log mentions — a spill that crashed before its record is
// ignored, and the job resumes from the previous durable capture.
//
// # Compaction contract
//
// The log grows by a handful of records per job; compaction rewrites it
// to the live set only. Compact takes a snapshot of records (rebuilt by
// the scheduler from its in-memory state: one submitted record per held
// job plus its current state-defining records), writes them to a fresh
// temp log, fsyncs, and atomically renames it over wal.log — a crash at
// any point leaves either the old log or the new one, never a mix.
// Checkpoint files for jobs absent from the snapshot are deleted after
// the rename. The scheduler triggers compaction every Config.CompactEvery
// appends and once after recovery; records evicted by the scheduler's
// retention limit simply stop appearing in snapshots.
//
// # Leases and epoch fencing
//
// Multi-replica coordination rides on three more record types — claimed,
// renewed, released — carrying an Owner, a per-job Epoch, and an
// ExpiresAt deadline (the v2 binary record format; v1 logs replay
// unchanged). A replica claims a queued job before dispatching it: the
// claim is a CAS that fails with ErrLeaseHeld while another replica's
// lease is live, and succeeds with an epoch strictly above every epoch
// the job has ever seen. That high-water mark is the fence: any
// lifecycle append carrying a stale epoch — or no owner at all while a
// live foreign lease exists — is rejected with ErrFenced. A replica that
// loses its lease (crash, partition, missed renewals) can therefore
// never retroactively finalize the job; the adopter's epoch wins, and
// exactly one terminal record lands in the log. Terminal records clear
// the lease and its epoch history. Submitted, claimed, renewed, and
// released records are never themselves fenced.
//
// Stores implementing the optional LeaseStore interface (Claim / Renew /
// Release / Leases / ReplaySince) expose this to the scheduler's replica
// mode; Mem and Shared both do.
//
// # Shared: one directory, many replicas
//
// Shared is the multi-handle WAL: every replica opens the same directory
// and serializes mutations through flock(2) on wal.lock. Each handle
// keeps a cached view of the log and refreshes it incrementally by
// scanning the tail it has not yet seen; a compaction by any replica is
// detected by inode comparison and bumps a generation counter, so
// ReplaySince(Watermark{Gen, Seq}) lets the scheduler consume exactly
// the records that are new to it. Torn tails are truncated under the
// lock by whichever handle finds them — a record half-written by a
// killed replica costs that replica its un-acked suffix and nothing
// else, and a claim torn mid-append is dropped on recovery (the job
// stays claimable; no lease leaks from a partial record).
//
// # Seam
//
// The scheduler depends only on the Store interface (append / replay /
// checkpoint spill / compact) plus the optional LeaseStore extension.
// WAL is the single-node file implementation, Shared the multi-replica
// one, and Mem the in-memory implementation used by tests; faulty.Wrap
// layers deterministic fault injection over any of them.
package store
