package store

import (
	"fmt"
	"hash/crc32"

	"repro/internal/cluster"
)

// Type discriminates the job lifecycle transitions a Record can carry.
type Type byte

// One record type per lifecycle transition. TypeSubmitted opens a job's
// history (and carries its spec); TypeCheckpointed marks a durable spill
// keyed by DispatchSeq; the terminal types close it. The lease types
// (claimed/renewed/released) carry job ownership for multi-replica stores:
// Claimed opens an ownership epoch, Renewed extends its expiry, Released
// (or any terminal record) ends it.
const (
	TypeSubmitted Type = iota + 1
	TypeDispatched
	TypeCheckpointed
	TypePreempted
	TypeDone
	TypeFailed
	TypeCanceled
	TypeClaimed
	TypeRenewed
	TypeReleased
)

var typeNames = map[Type]string{
	TypeSubmitted:    "submitted",
	TypeDispatched:   "dispatched",
	TypeCheckpointed: "checkpointed",
	TypePreempted:    "preempted",
	TypeDone:         "done",
	TypeFailed:       "failed",
	TypeCanceled:     "canceled",
	TypeClaimed:      "claimed",
	TypeRenewed:      "renewed",
	TypeReleased:     "released",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Terminal reports whether the record closes a job's history.
func (t Type) Terminal() bool {
	return t == TypeDone || t == TypeFailed || t == TypeCanceled
}

// Record is one job lifecycle transition. Fields beyond Type/Job/Time are
// meaningful per type: JobSeq and Spec ride submitted records, Updates and
// DispatchSeq ride checkpointed/preempted records, Detail and the final
// error ride terminal records. Unused fields encode as their zero values.
type Record struct {
	// Seq is the record's position in the log, assigned by Append and
	// restored by Replay. It restarts at 1 after a compaction.
	Seq uint64
	// Type is the transition.
	Type Type
	// Job is the scheduler's job ID.
	Job string
	// Time is the transition wall time (unix nanoseconds); replay uses it
	// to restore queue/retention ordering and SLO deadlines.
	Time int64

	// JobSeq is the scheduler's submission ordinal (TypeSubmitted).
	JobSeq int64
	// Spec is the JSON-encoded job spec (TypeSubmitted).
	Spec []byte

	// Updates is the model-update clock at the transition.
	Updates int64
	// DispatchSeq keys the spilled checkpoint file (TypeCheckpointed,
	// TypePreempted).
	DispatchSeq int64

	// Detail carries the failure/cancellation reason (terminal types).
	Detail string
	// FinalError is the trace's final suboptimality when HasFinal
	// (TypeDone).
	FinalError float64
	HasFinal   bool

	// Lease fields (format v2). Owner names the replica holding (or
	// claiming) the job; Epoch is the fencing token, strictly increasing
	// per job across claims; ExpiresAt is the lease deadline in unix
	// nanoseconds. On lifecycle records (dispatched, checkpointed,
	// preempted, terminal) a non-empty Owner asserts ownership: the store
	// rejects the append with ErrFenced unless (Owner, Epoch) matches the
	// job's live lease.
	Owner     string
	Epoch     int64
	ExpiresAt int64
}

// Frame format constants. The record frame mirrors the wire codec's
// [u32 len][format][body] layout with a trailing CRC-32 so a torn or
// bit-flipped append is detected instead of replayed.
const (
	// recFormatBin is the pre-lease record body (PR 6); decode keeps
	// accepting it so logs written before the lease schema still replay.
	recFormatBin byte = 1
	// recFormatBin2 appends the lease fields (Owner, Epoch, ExpiresAt) to
	// the body; every new append writes this format.
	recFormatBin2 byte = 2

	// maxRecord bounds one record frame so a corrupt length prefix cannot
	// trigger an unbounded allocation during replay. Specs are small
	// JSON documents; 16 MiB is orders of magnitude of headroom.
	maxRecord = 16 << 20
)

// walMagic opens every log file.
var walMagic = []byte("AWL1")

// encode appends the record's complete frame to dst:
// [u32 len][format][body][crc32(format+body)].
func (r *Record) encode(dst []byte) []byte {
	var bw cluster.BinWriter
	bw.PutUvarint(r.Seq)
	bw.PutByte(byte(r.Type))
	bw.PutString(r.Job)
	bw.PutVarint(r.Time)
	bw.PutVarint(r.JobSeq)
	bw.PutString(string(r.Spec))
	bw.PutVarint(r.Updates)
	bw.PutVarint(r.DispatchSeq)
	bw.PutString(r.Detail)
	hf := byte(0)
	if r.HasFinal {
		hf = 1
	}
	bw.PutByte(hf)
	bw.PutFloat64(r.FinalError)
	bw.PutString(r.Owner)
	bw.PutVarint(r.Epoch)
	bw.PutVarint(r.ExpiresAt)
	body := bw.Bytes()

	l := uint32(1 + len(body) + 4) // format + body + crc
	dst = append(dst, byte(l>>24), byte(l>>16), byte(l>>8), byte(l))
	start := len(dst)
	dst = append(dst, recFormatBin2)
	dst = append(dst, body...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// decodeRecord parses one frame from buf and returns the record plus the
// total bytes consumed. Any defect — short buffer, bad length, unknown
// format, CRC mismatch, malformed body — returns an error; the caller
// treats the failing offset as the end of the valid prefix.
func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 4 {
		return Record{}, 0, fmt.Errorf("store: short frame header (%d bytes)", len(buf))
	}
	l := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
	if l < 1+4 || l > maxRecord {
		return Record{}, 0, fmt.Errorf("store: bad record length %d", l)
	}
	if int(l) > len(buf)-4 {
		return Record{}, 0, fmt.Errorf("store: truncated record (%d of %d bytes)", len(buf)-4, l)
	}
	frame := buf[4 : 4+int(l)] // format + body + crc
	crcAt := len(frame) - 4
	want := uint32(frame[crcAt])<<24 | uint32(frame[crcAt+1])<<16 | uint32(frame[crcAt+2])<<8 | uint32(frame[crcAt+3])
	if got := crc32.ChecksumIEEE(frame[:crcAt]); got != want {
		return Record{}, 0, fmt.Errorf("store: record CRC mismatch (%08x != %08x)", got, want)
	}
	format := frame[0]
	if format != recFormatBin && format != recFormatBin2 {
		return Record{}, 0, fmt.Errorf("store: unknown record format %d", format)
	}
	br := cluster.NewBinReader(frame[1:crcAt])
	r := Record{
		Seq:  br.Uvarint(),
		Type: Type(br.Byte()),
		Job:  br.String(),
		Time: br.Varint(),
	}
	r.JobSeq = br.Varint()
	if spec := br.String(); spec != "" {
		r.Spec = []byte(spec)
	}
	r.Updates = br.Varint()
	r.DispatchSeq = br.Varint()
	r.Detail = br.String()
	r.HasFinal = br.Byte() == 1
	r.FinalError = br.Float64()
	if format >= recFormatBin2 {
		r.Owner = br.String()
		r.Epoch = br.Varint()
		r.ExpiresAt = br.Varint()
	}
	if err := br.Err(); err != nil {
		return Record{}, 0, fmt.Errorf("store: record body: %w", err)
	}
	if _, ok := typeNames[r.Type]; !ok {
		return Record{}, 0, fmt.Errorf("store: unknown record type %d", r.Type)
	}
	return r, 4 + int(l), nil
}
