package store

import (
	"errors"
	"time"
)

// Lease-layer errors. ErrFenced is the hard safety signal: the caller's
// ownership epoch is stale (its lease expired, was released, or a newer
// claim bumped the epoch) and the attempted mutation was rejected — a
// partitioned replica gets ErrFenced instead of corrupting shared state.
// ErrLeaseHeld is the soft CAS-failure signal: another replica currently
// holds a live lease on the job; try another job or wait for expiry.
var (
	ErrFenced    = errors.New("store: fenced (stale lease epoch)")
	ErrLeaseHeld = errors.New("store: lease held by another owner")
)

// Lease is one job's ownership record: who may mutate it, under which
// fencing epoch, and until when. Epochs strictly increase per job across
// claims — a claim after expiry or release always observes a higher epoch
// than the one it displaced, so a stale owner can never pass a fence check
// again.
type Lease struct {
	Job       string `json:"job"`
	Owner     string `json:"owner"`
	Epoch     int64  `json:"epoch"`
	ExpiresAt int64  `json:"expires_at"` // unix nanoseconds
}

// Live reports whether the lease is unexpired at now.
func (l Lease) Live(now time.Time) bool {
	return l.Owner != "" && now.UnixNano() < l.ExpiresAt
}

// Watermark identifies a log position for incremental tail reads: the
// compaction generation (compaction renumbers record seqs, so a seq alone
// is ambiguous) plus the last record seq consumed within it. The zero
// Watermark reads from the beginning.
type Watermark struct {
	Gen uint64 `json:"gen"`
	Seq uint64 `json:"seq"`
}

// LeaseStore is the multi-replica extension of Store: lease-based job
// claiming with epoch fencing, plus incremental tail replay so replicas
// learn of each other's appends. Shared (file-locked multi-handle WAL) and
// Mem implement it; a remote backend slots in behind the same surface.
//
// Fencing contract: Append with a non-empty rec.Owner succeeds only while
// the job's live lease matches (Owner, Epoch) exactly and is unexpired;
// otherwise ErrFenced. Claim succeeds when the job is unleased, its lease
// expired, or the claimant already owns it — always bumping the epoch.
// Renew extends a live lease the caller holds; a renew after expiry fails
// with ErrFenced (the owner must re-claim, racing any adopter through the
// same CAS). Terminal records clear the lease implicitly.
type LeaseStore interface {
	Store
	// Claim atomically acquires the job's lease for owner with the given
	// TTL, bumping the epoch past every epoch ever observed for the job.
	// Fails with ErrLeaseHeld while another owner's lease is live.
	Claim(job, owner string, ttl time.Duration) (Lease, error)
	// Renew extends the caller's live lease; ErrFenced if the (owner,
	// epoch) pair is stale or the lease already expired.
	Renew(job, owner string, epoch int64, ttl time.Duration) (Lease, error)
	// Release ends the caller's lease; ErrFenced on a stale pair. Releasing
	// an already-cleared lease is a no-op.
	Release(job, owner string, epoch int64) error
	// Leases snapshots the lease table, expired entries included (the
	// caller distinguishes by ExpiresAt — an expired entry is an orphan
	// candidate).
	Leases() ([]Lease, error)
	// ReplaySince streams records appended after the watermark and returns
	// the new watermark. After a compaction the generation changes and the
	// log replays from its (rewritten) beginning.
	ReplaySince(w Watermark, fn func(Record) error) (Watermark, error)
}

// leaseTable is the in-memory lease state both lease-capable stores derive
// from the record stream. Not self-locking: the owning store guards it.
type leaseTable struct {
	leases   map[string]Lease
	maxEpoch map[string]int64 // highest epoch ever observed per job
}

func newLeaseTable() *leaseTable {
	return &leaseTable{leases: map[string]Lease{}, maxEpoch: map[string]int64{}}
}

// apply folds one record into the table. Claim/renew/release maintain the
// lease map; terminal records clear the job's lease (the job is over) and
// its epoch high-water (the job ID will never be claimed again).
func (t *leaseTable) apply(rec *Record) {
	switch rec.Type {
	case TypeClaimed:
		t.leases[rec.Job] = Lease{Job: rec.Job, Owner: rec.Owner, Epoch: rec.Epoch, ExpiresAt: rec.ExpiresAt}
		if rec.Epoch > t.maxEpoch[rec.Job] {
			t.maxEpoch[rec.Job] = rec.Epoch
		}
	case TypeRenewed:
		if l, ok := t.leases[rec.Job]; ok && l.Owner == rec.Owner && l.Epoch == rec.Epoch {
			l.ExpiresAt = rec.ExpiresAt
			t.leases[rec.Job] = l
		}
	case TypeReleased:
		if rec.Epoch > t.maxEpoch[rec.Job] {
			t.maxEpoch[rec.Job] = rec.Epoch
		}
		if l, ok := t.leases[rec.Job]; ok && l.Owner == rec.Owner && l.Epoch == rec.Epoch {
			delete(t.leases, rec.Job)
		}
	case TypeDone, TypeFailed, TypeCanceled:
		delete(t.leases, rec.Job)
		delete(t.maxEpoch, rec.Job)
	}
}

// fence validates an ownership-asserting append: a record carrying an
// Owner must match the job's live lease exactly. Ownerless lifecycle
// records (single-owner schedulers) pass unfenced — unless the job holds a
// live lease, in which case only its owner may move the job's state: an
// unfenced Canceled from a bystander must not clear a running replica's
// lease out from under it. Submissions and lease-protocol records are
// never fenced here (claims carry their own CAS).
func (t *leaseTable) fence(rec *Record, now time.Time) error {
	switch rec.Type {
	case TypeClaimed, TypeRenewed, TypeReleased, TypeSubmitted:
		return nil
	}
	l, ok := t.leases[rec.Job]
	if rec.Owner == "" {
		if ok && l.Live(now) {
			return ErrFenced
		}
		return nil
	}
	if !ok || l.Owner != rec.Owner || l.Epoch != rec.Epoch || !l.Live(now) {
		return ErrFenced
	}
	return nil
}

// claim runs the claim CAS against the table and returns the records's
// lease fields. The caller appends the returned Claimed record durably
// before applying it.
func (t *leaseTable) claim(job, owner string, ttl time.Duration, now time.Time) (Lease, error) {
	if l, ok := t.leases[job]; ok && l.Owner != owner && l.Live(now) {
		return Lease{}, ErrLeaseHeld
	}
	return Lease{
		Job:       job,
		Owner:     owner,
		Epoch:     t.maxEpoch[job] + 1,
		ExpiresAt: now.Add(ttl).UnixNano(),
	}, nil
}

// renew validates a renewal and returns the extended lease. An expired or
// superseded lease fails with ErrFenced: the owner must go back through
// the claim CAS.
func (t *leaseTable) renew(job, owner string, epoch int64, ttl time.Duration, now time.Time) (Lease, error) {
	l, ok := t.leases[job]
	if !ok || l.Owner != owner || l.Epoch != epoch || !l.Live(now) {
		return Lease{}, ErrFenced
	}
	l.ExpiresAt = now.Add(ttl).UnixNano()
	return l, nil
}

// release validates a release. A missing lease is a no-op (the terminal
// record already cleared it); a mismatched live lease is ErrFenced.
func (t *leaseTable) release(job, owner string, epoch int64) (Lease, bool, error) {
	l, ok := t.leases[job]
	if !ok {
		return Lease{}, false, nil
	}
	if l.Owner != owner || l.Epoch != epoch {
		return Lease{}, false, ErrFenced
	}
	return l, true, nil
}

// snapshotRecords serializes the table back into log records so a
// compaction preserves lease semantics: one Claimed record per held lease
// (live or expired — an expired lease is an adoptable orphan and must
// survive the rewrite), plus an ownerless Released record pinning the
// epoch high-water of every job whose lease was released. Replaying them
// through apply reproduces the table exactly.
func (t *leaseTable) snapshotRecords(now int64) []*Record {
	recs := make([]*Record, 0, len(t.leases)+len(t.maxEpoch))
	for _, l := range t.leases {
		recs = append(recs, &Record{
			Type: TypeClaimed, Job: l.Job, Time: now,
			Owner: l.Owner, Epoch: l.Epoch, ExpiresAt: l.ExpiresAt,
		})
	}
	for job, epoch := range t.maxEpoch {
		if _, held := t.leases[job]; !held {
			recs = append(recs, &Record{Type: TypeReleased, Job: job, Time: now, Epoch: epoch})
		}
	}
	return recs
}

// snapshot copies the lease table.
func (t *leaseTable) snapshot() []Lease {
	out := make([]Lease, 0, len(t.leases))
	for _, l := range t.leases {
		out = append(out, l)
	}
	return out
}
