package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openShared(t *testing.T, dir, replica string) *Shared {
	t.Helper()
	s, err := OpenShared(dir, replica, SharedOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// ownedRecord is a lifecycle record asserting ownership under a lease.
func ownedRecord(typ Type, job, owner string, epoch int64) *Record {
	return &Record{Type: typ, Job: job, Owner: owner, Epoch: epoch}
}

// TestSharedLeaseFencing drives the fencing contract across two handles on
// one directory: a live foreign lease rejects claims (ErrLeaseHeld) and
// both owned and ownerless lifecycle appends from anyone but the owner
// (ErrFenced); release hands the job over with a strictly higher epoch,
// after which the old owner's epoch is dead forever.
func TestSharedLeaseFencing(t *testing.T) {
	dir := t.TempDir()
	a := openShared(t, dir, "a")
	b := openShared(t, dir, "b")
	const job = "job-a-000001"

	if err := a.Append(testRecord(1, TypeSubmitted, job)); err != nil {
		t.Fatal(err)
	}
	la, err := a.Claim(job, "a", time.Minute)
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	if la.Epoch != 1 || la.Owner != "a" {
		t.Fatalf("first claim lease %+v, want owner a epoch 1", la)
	}

	if _, err := b.Claim(job, "b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("claim over live foreign lease: %v, want ErrLeaseHeld", err)
	}
	// a bystander may not move a leased job's state, with or without a token
	if err := b.Append(ownedRecord(TypeCanceled, job, "", 0)); !errors.Is(err, ErrFenced) {
		t.Fatalf("ownerless cancel of leased job: %v, want ErrFenced", err)
	}
	if err := b.Append(ownedRecord(TypeDispatched, job, "b", la.Epoch)); !errors.Is(err, ErrFenced) {
		t.Fatalf("foreign-owner dispatch: %v, want ErrFenced", err)
	}

	if err := a.Append(ownedRecord(TypeDispatched, job, "a", la.Epoch)); err != nil {
		t.Fatalf("owner dispatch: %v", err)
	}
	if _, err := a.Renew(job, "a", la.Epoch, time.Minute); err != nil {
		t.Fatalf("owner renew: %v", err)
	}
	if err := a.Release(job, "a", la.Epoch); err != nil {
		t.Fatalf("owner release: %v", err)
	}

	lb, err := b.Claim(job, "b", time.Minute)
	if err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	if lb.Epoch <= la.Epoch {
		t.Fatalf("epoch after handover %d, want > %d (strictly increasing)", lb.Epoch, la.Epoch)
	}
	// the displaced epoch can never pass a fence again
	if err := a.Append(ownedRecord(TypeCheckpointed, job, "a", la.Epoch)); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch append: %v, want ErrFenced", err)
	}
	if _, err := a.Renew(job, "a", la.Epoch, time.Minute); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch renew: %v, want ErrFenced", err)
	}

	if m := b.Metrics(); m.FencedAppends == 0 {
		t.Fatalf("no fenced appends counted on b: %+v", m)
	}
	// the terminal record (from the live owner) clears the lease
	if err := b.Append(ownedRecord(TypeDone, job, "b", lb.Epoch)); err != nil {
		t.Fatalf("owner terminal: %v", err)
	}
	ls, err := a.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 0 {
		t.Fatalf("leases after terminal record: %+v, want none", ls)
	}
}

// TestSharedLeaseExpiryAdoption: an expired lease is fenced for its old
// owner and claimable by an adopter at a strictly higher epoch, through a
// handle that never saw the original claim first-hand.
func TestSharedLeaseExpiryAdoption(t *testing.T) {
	dir := t.TempDir()
	a := openShared(t, dir, "a")
	const job = "job-a-000001"
	if err := a.Append(testRecord(1, TypeSubmitted, job)); err != nil {
		t.Fatal(err)
	}
	la, err := a.Claim(job, "a", 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)

	if _, err := a.Renew(job, "a", la.Epoch, time.Minute); !errors.Is(err, ErrFenced) {
		t.Fatalf("renew after expiry: %v, want ErrFenced", err)
	}
	b := openShared(t, dir, "b") // opened post-expiry: sees only the log
	ls, err := b.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 || ls[0].Live(time.Now()) {
		t.Fatalf("orphan scan sees %+v, want one expired lease", ls)
	}
	lb, err := b.Claim(job, "b", time.Minute)
	if err != nil {
		t.Fatalf("adoption claim: %v", err)
	}
	if lb.Epoch <= la.Epoch {
		t.Fatalf("adoption epoch %d, want > %d", lb.Epoch, la.Epoch)
	}
	if err := a.Append(ownedRecord(TypeDone, job, "a", la.Epoch)); !errors.Is(err, ErrFenced) {
		t.Fatalf("old owner append after adoption: %v, want ErrFenced", err)
	}
	if err := b.Append(ownedRecord(TypeDone, job, "b", lb.Epoch)); err != nil {
		t.Fatalf("adopter append: %v", err)
	}
}

// TestSharedCompactionSwapDetected: after one handle compacts (rewriting
// the file and renaming it over the old inode), a stale handle must detect
// the swap on its next operation, re-read the rewritten log, and keep the
// lease table — claims survive compaction.
func TestSharedCompactionSwapDetected(t *testing.T) {
	dir := t.TempDir()
	a := openShared(t, dir, "a")
	b := openShared(t, dir, "b")
	const live = "job-a-000001"

	if err := a.Append(testRecord(1, TypeSubmitted, live)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Claim(live, "a", time.Minute); err != nil {
		t.Fatal(err)
	}
	// a finished job that compaction squeezes to submitted+terminal
	if err := a.Append(testRecord(2, TypeSubmitted, "job-a-000002")); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(testRecord(3, TypeDispatched, "job-a-000002")); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(testRecord(4, TypeDone, "job-a-000002")); err != nil {
		t.Fatal(err)
	}

	// b's view predates the rewrite
	wm, err := b.ReplaySince(Watermark{}, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Compact(nil); err != nil {
		t.Fatal(err)
	}

	// the stale handle must observe the swap, not append past a dead inode
	if _, err := b.Claim(live, "b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("claim after compaction: %v, want ErrLeaseHeld (lease survived rewrite)", err)
	}
	wm2, err := b.ReplaySince(wm, func(r Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if wm2.Gen <= wm.Gen {
		t.Fatalf("watermark generation %d after compaction, want > %d", wm2.Gen, wm.Gen)
	}
	// and appends from the stale handle land in the rewritten log
	if err := b.Append(testRecord(9, TypeSubmitted, "job-b-000001")); err != nil {
		t.Fatalf("append after swap: %v", err)
	}
	a2 := openShared(t, dir, "a2")
	n := 0
	seen := false
	if err := a2.Replay(func(r Record) error {
		n++
		seen = seen || r.Job == "job-b-000001"
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatalf("post-swap append missing from rewritten log (%d records)", n)
	}
}

// TestSharedTornClaimRecovered is the truncated-mid-lease-record recovery
// test: a log whose final Claimed record is cut mid-frame (the claimant
// died between write and ack) recovers to the longest valid prefix — the
// partial claim is dropped, the job's submission survives, and the job is
// claimable by the next replica at a fresh epoch.
func TestSharedTornClaimRecovered(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared(dir, "a", SharedOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const job = "job-a-000001"
	if err := a.Append(testRecord(1, TypeSubmitted, job)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walName)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Claim(job, "a", time.Minute); err != nil {
		t.Fatal(err)
	}
	a.Close()
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() <= before.Size() {
		t.Fatalf("claim appended nothing (%d -> %d bytes)", before.Size(), after.Size())
	}
	// cut into the middle of the claim frame
	if err := os.Truncate(path, before.Size()+(after.Size()-before.Size())/2); err != nil {
		t.Fatal(err)
	}

	b, err := OpenShared(dir, "b", SharedOptions{NoSync: true})
	if err != nil {
		t.Fatalf("open over torn claim: %v", err)
	}
	defer b.Close()
	if m := b.Metrics(); !m.TruncatedTail {
		t.Fatalf("torn tail not reported: %+v", m)
	}
	var types []Type
	if err := b.Replay(func(r Record) error { types = append(types, r.Type); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || types[0] != TypeSubmitted {
		t.Fatalf("recovered record types %v, want just the submission", types)
	}
	ls, err := b.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 0 {
		t.Fatalf("partial claim leaked into the lease table: %+v", ls)
	}
	if _, err := b.Claim(job, "b", time.Minute); err != nil {
		t.Fatalf("job not claimable after torn-claim recovery: %v", err)
	}

	// the single-owner WAL recovers the same file the same way
	dir2 := t.TempDir()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, walName), src, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(dir2, Options{NoSync: true})
	if err != nil {
		t.Fatalf("WAL open over recovered log: %v", err)
	}
	defer w.Close()
	n := 0
	if err := w.Replay(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("WAL replay lost the surviving submission")
	}
}

// TestSharedCrashFailpointSurvivorTruncates: the armed crash failpoint
// tears an append mid-record and kills the handle; the surviving replica's
// next mutation truncates the torn tail and proceeds on a contiguous log.
func TestSharedCrashFailpointSurvivorTruncates(t *testing.T) {
	dir := t.TempDir()
	a := openShared(t, dir, "a")
	b := openShared(t, dir, "b")
	if err := a.Append(testRecord(1, TypeSubmitted, "job-a-000001")); err != nil {
		t.Fatal(err)
	}
	a.FailAfterAppends(0)
	if err := a.Append(testRecord(2, TypeDispatched, "job-a-000001")); !errors.Is(err, ErrClosed) {
		t.Fatalf("torn append: %v, want ErrClosed (handle dead)", err)
	}
	if err := a.Append(testRecord(3, TypeDone, "job-a-000001")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on dead handle: %v, want ErrClosed", err)
	}

	if err := b.Append(testRecord(2, TypeSubmitted, "job-b-000001")); err != nil {
		t.Fatalf("survivor append over torn tail: %v", err)
	}
	var last uint64
	if err := b.Replay(func(r Record) error {
		if r.Seq != last+1 {
			t.Fatalf("seq %d after %d: log not contiguous after truncation", r.Seq, last)
		}
		last = r.Seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last != 2 {
		t.Fatalf("survivor log has %d records, want 2 (torn record dropped)", last)
	}
}

// TestSharedTransientAppendFailureRollsBack: a failed append must leave no
// seq gap. Before the fix, appendRecLocked bumped seq before the write, so
// a transient error left a permanent gap and the next successful append
// (here, a lease claim) was truncated by peers as a torn tail — the
// claimant believed it held the lease while peers could claim the same
// job.
func TestSharedTransientAppendFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	a := openShared(t, dir, "a")
	const job = "job-a-000001"
	if err := a.Append(testRecord(1, TypeSubmitted, job)); err != nil {
		t.Fatal(err)
	}
	a.FailNextAppendTransient()
	if err := a.Append(testRecord(2, TypeSubmitted, "job-a-000002")); err == nil {
		t.Fatal("injected append failure returned nil")
	}
	// the handle survives and its next append lands at a contiguous seq
	la, err := a.Claim(job, "a", time.Minute)
	if err != nil {
		t.Fatalf("claim after transient append failure: %v", err)
	}
	// a peer must replay both durable records intact; a seq gap would make
	// it cut the claim as a torn tail and hand the lease to someone else
	b := openShared(t, dir, "b")
	var types []Type
	var last uint64
	if err := b.Replay(func(r Record) error {
		if r.Seq != last+1 {
			t.Fatalf("seq %d after %d: gap left by failed append", r.Seq, last)
		}
		last = r.Seq
		types = append(types, r.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != TypeSubmitted || types[1] != TypeClaimed {
		t.Fatalf("peer replay %v, want [submitted claimed]", types)
	}
	if m := b.Metrics(); m.TruncatedTail {
		t.Fatal("peer truncated a tail the rollback should have repaired")
	}
	if _, err := b.Claim(job, "b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("peer claim over live lease (epoch %d): %v, want ErrLeaseHeld", la.Epoch, err)
	}
}
