package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/opt"
)

// Options configure a WAL.
type Options struct {
	// NoSync skips the per-append fsync (tests and benchmarks; a real
	// daemon should leave it off — the append-before-ack invariant is only
	// as strong as the sync under it).
	NoSync bool
}

// WAL is the file-backed Store: one wal.log of CRC-framed records plus
// per-job checkpoint spill files, all inside one directory owned by a
// single scheduler process.
type WAL struct {
	mu     sync.Mutex
	dir    string
	f      *os.File
	noSync bool
	seq    uint64
	buf    []byte // reused frame-encode scratch

	// recovered state from Open, consumed by Replay
	records   []Record
	truncated bool

	// metrics (guarded by mu)
	appends, sinceCompact int64
	fsyncs                int64
	fsyncNS               int64
	size                  int64
	compactions           int64
	spills                int64

	// failpoints (tests): failAfter counts down on each append; at zero the
	// append tears mid-record and the WAL goes dead — exactly what kill -9
	// between write and ack looks like. dead makes every later mutation
	// return ErrClosed.
	failAfter int64
	armed     bool
	dead      bool
	closed    bool
}

const walName = "wal.log"

// Open recovers the log in dir (created if missing): it scans wal.log,
// keeps the longest valid prefix of records, truncates any torn or corrupt
// tail, and positions the file for appending. The recovered records are
// consumed through Replay.
func Open(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	// sweep temp files orphaned by a crash mid temp+fsync+rename: no writer
	// is live at Open, so any *.tmp is dead by definition (the spill GC only
	// ever matches completed .ckpt names and would keep them forever)
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	w := &WAL{dir: dir, f: f, noSync: opts.NoSync}
	validEnd := 0
	switch {
	case len(data) == 0:
		// fresh log: write the magic header
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: init %s: %w", path, err)
		}
		if err := w.syncFile(f); err != nil {
			f.Close()
			return nil, err
		}
		validEnd = len(walMagic)
	case !bytes.HasPrefix(data, walMagic):
		f.Close()
		return nil, fmt.Errorf("store: %s is not a WAL (bad magic)", path)
	default:
		validEnd = len(walMagic)
		for off := validEnd; off < len(data); {
			rec, n, err := decodeRecord(data[off:])
			if err != nil || rec.Seq != w.seq+1 {
				// decode failure or a sequence break: Append numbers records
				// contiguously from 1, so either way the log is damaged here
				// and the valid prefix ends
				w.truncated = true
				break
			}
			w.records = append(w.records, rec)
			w.seq = rec.Seq
			off += n
			validEnd = off
		}
	}
	if validEnd < len(data) {
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
		}
		if err := w.syncFile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(validEnd), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", path, err)
	}
	w.size = int64(validEnd)
	w.sinceCompact = int64(len(w.records))
	walReplayed.Add(int64(len(w.records)))
	if w.truncated {
		walTruncations.Inc()
	}
	walSize.SetInt(w.size)
	return w, nil
}

// Dir returns the store directory.
func (w *WAL) Dir() string { return w.dir }

// Replay streams the records Open recovered, in log order.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	recs := w.records
	w.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Append durably logs one record: frame (with CRC) written, flushed, and
// fsynced before returning. The record's Seq is assigned here.
func (w *WAL) Append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return ErrClosed
	}
	start := time.Now()
	w.seq++
	rec.Seq = w.seq
	w.buf = rec.encode(w.buf[:0])
	frame := w.buf
	if w.armed {
		if w.failAfter <= 0 {
			// failpoint: tear this append mid-record and die, simulating
			// kill -9 between the write syscall and the ack
			torn := frame[:len(frame)/2]
			_, _ = w.f.Write(torn)
			w.size += int64(len(torn))
			w.dead = true
			return ErrClosed
		}
		w.failAfter--
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	w.size += int64(len(frame))
	if err := w.syncFile(w.f); err != nil {
		return err
	}
	w.appends++
	w.sinceCompact++
	walAppends.Inc()
	walAppendLat.ObserveSince(start)
	walSize.SetInt(w.size)
	return nil
}

// syncFile fsyncs f (unless NoSync) and accounts the latency.
func (w *WAL) syncFile(f *os.File) error {
	if w.noSync {
		return nil
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	w.fsyncs++
	w.fsyncNS += time.Since(start).Nanoseconds()
	walFsyncLat.ObserveSince(start)
	return nil
}

// ckptName builds the spill filename for (job, dispatchSeq). Job IDs are
// scheduler-generated ("job-000042"); anything path-like is rejected.
func ckptName(job string, dispatchSeq int64) (string, error) {
	if job == "" || strings.ContainsAny(job, "/\\:*?\"<>|") || strings.Contains(job, "..") {
		return "", fmt.Errorf("store: invalid job id %q", job)
	}
	return fmt.Sprintf("cp-%s-%d.ckpt", job, dispatchSeq), nil
}

// SaveCheckpoint durably spills cp keyed by (job, dispatchSeq): temp file,
// fsync, rename into place, then older spills of the same job are removed.
// The caller appends the checkpointed record only after this returns, so
// the log never references a spill that is not on disk.
func (w *WAL) SaveCheckpoint(job string, dispatchSeq int64, cp *opt.Checkpoint) error {
	name, err := ckptName(job, dispatchSeq)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return ErrClosed
	}
	var buf bytes.Buffer
	if err := opt.SaveCheckpoint(&buf, cp); err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	tmp := filepath.Join(w.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	if err := w.syncFile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, name)); err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	w.spills++
	walSpills.Inc()
	w.dropSpillsLocked(job, name)
	return nil
}

// dropSpillsLocked removes the job's spill files except keep ("" = all).
func (w *WAL) dropSpillsLocked(job, keep string) {
	dropSpillFiles(w.dir, job, keep)
}

// LoadCheckpoint loads the spill keyed by (job, dispatchSeq).
func (w *WAL) LoadCheckpoint(job string, dispatchSeq int64) (*opt.Checkpoint, error) {
	name, err := ckptName(job, dispatchSeq)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(w.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: load checkpoint %s@%d: %w", job, dispatchSeq, err)
	}
	defer f.Close()
	return opt.LoadCheckpoint(f)
}

// DropJob removes all spilled checkpoints of a terminal job.
func (w *WAL) DropJob(job string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return ErrClosed
	}
	w.dropSpillsLocked(job, "")
	return nil
}

// Compact atomically replaces the log with snapshot: a fresh temp log is
// written (records re-sequenced from 1), fsynced, and renamed over
// wal.log; checkpoints of jobs no snapshot record names are then deleted.
// A crash anywhere leaves either the complete old log or the complete new
// one.
func (w *WAL) Compact(snapshot []*Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return ErrClosed
	}
	tmp := filepath.Join(w.dir, walName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	buf := append(w.buf[:0], walMagic...)
	keep := make(map[string]bool, len(snapshot))
	for i, rec := range snapshot {
		rec.Seq = uint64(i + 1)
		buf = rec.encode(buf)
		keep[rec.Job] = true
	}
	w.buf = buf[:0]
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := w.syncFile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	path := filepath.Join(w.dir, walName)
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	old := w.f
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact reopen: %w", err)
	}
	if _, err := nf.Seek(0, 2); err != nil {
		nf.Close()
		return fmt.Errorf("store: compact reopen: %w", err)
	}
	w.f = nf
	_ = old.Close()
	w.seq = uint64(len(snapshot))
	w.size = int64(len(buf))
	w.sinceCompact = 0
	w.compactions++
	w.appends += int64(len(snapshot))
	walCompactions.Inc()
	walAppends.Add(int64(len(snapshot)))
	walSize.SetInt(w.size)
	// GC spills of jobs the compacted log no longer mentions
	entries, err := os.ReadDir(w.dir)
	if err == nil {
		for _, e := range entries {
			n := e.Name()
			if !strings.HasPrefix(n, "cp-") || !strings.HasSuffix(n, ".ckpt") {
				continue
			}
			core := strings.TrimSuffix(strings.TrimPrefix(n, "cp-"), ".ckpt")
			if i := strings.LastIndexByte(core, '-'); i > 0 {
				core = core[:i]
			}
			if !keep[core] {
				_ = os.Remove(filepath.Join(w.dir, n))
			}
		}
	}
	return nil
}

// Sync fsyncs the log (graceful-shutdown flush).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return ErrClosed
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	w.fsyncs++
	w.fsyncNS += time.Since(start).Nanoseconds()
	walFsyncLat.ObserveSince(start)
	return nil
}

// Metrics snapshots the counters.
func (w *WAL) Metrics() Metrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Metrics{
		Appends:             w.appends,
		AppendsSinceCompact: w.sinceCompact,
		Fsyncs:              w.fsyncs,
		FsyncTotal:          time.Duration(w.fsyncNS),
		SizeBytes:           w.size,
		Compactions:         w.compactions,
		CheckpointSpills:    w.spills,
		ReplayedRecords:     int64(len(w.records)),
		TruncatedTail:       w.truncated,
	}
}

// Close releases the log file. The WAL stays readable on disk.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// FailAfterAppends arms the crash failpoint: the next n appends succeed,
// then the following one is torn mid-record and the store goes dead
// (every later mutation returns ErrClosed) — the closest a test can get to
// kill -9 without a subprocess. Testing hook.
func (w *WAL) FailAfterAppends(n int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.armed = true
	w.failAfter = n
}

// Kill makes the store drop every subsequent mutation (returning
// ErrClosed) without tearing the log — simulating a process death at a
// record boundary. Testing hook.
func (w *WAL) Kill() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dead = true
}
