package store

import "repro/internal/telemetry"

// WAL instrumentation on the process-global registry. These are live views
// of the durable log: every append/fsync observes directly; size tracks the
// file length after each mutation. The asyncd_wal_* families exposed by the
// jobs scheduler mirror the same counters per-store via Metrics().
var (
	walAppends = telemetry.Default().Counter("async_wal_appends_total",
		"Records durably appended to the WAL (compaction rewrites included).")
	walAppendLat = telemetry.Default().Histogram("async_wal_append_seconds",
		"WAL append latency (frame encode + write + fsync).",
		telemetry.LatencyBuckets())
	walFsyncLat = telemetry.Default().Histogram("async_wal_fsync_seconds",
		"fsync latency under WAL appends, spills, and compactions.",
		telemetry.LatencyBuckets())
	walSize = telemetry.Default().Gauge("async_wal_size_bytes",
		"Current WAL log size in bytes (most recently opened store).")
	walCompactions = telemetry.Default().Counter("async_wal_compactions_total",
		"WAL compactions (log rewritten from the live-job snapshot).")
	walSpills = telemetry.Default().Counter("async_wal_checkpoint_spills_total",
		"Checkpoint spill files durably written.")
	walReplayed = telemetry.Default().Counter("async_wal_replayed_records_total",
		"Records recovered from disk across WAL opens.")
	walTruncations = telemetry.Default().Counter("async_wal_truncations_total",
		"WAL opens that discarded a torn or corrupt tail.")
	walLeaseClaims = telemetry.Default().Counter("async_wal_lease_claims_total",
		"Job leases claimed (epoch bumps) across lease-capable stores.")
	walLeaseRenewals = telemetry.Default().Counter("async_wal_lease_renewals_total",
		"Job lease renewals across lease-capable stores.")
	walFencedAppends = telemetry.Default().Counter("async_wal_fenced_appends_total",
		"Mutations rejected with ErrFenced (stale replica writes).")
)
