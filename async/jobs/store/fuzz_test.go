package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayWAL feeds arbitrary bytes to the WAL recovery path: Open must
// never panic, and whatever it recovers must be a valid record prefix —
// strictly increasing seqs, decodable types. Seeds cover a clean log, a
// torn tail, a bit flip, and garbage.
func FuzzReplayWAL(f *testing.F) {
	clean := append([]byte(nil), walMagic...)
	for i := 1; i <= 3; i++ {
		r := testRecord(uint64(i), TypeSubmitted, "job-000001")
		r.Seq = uint64(i)
		clean = r.encode(clean)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-9]) // torn tail
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)                                // bit flip mid-log
	f.Add([]byte{})                               // empty file
	f.Add([]byte("AWL1"))                         // magic only
	f.Add([]byte("AWL1\x00\x00\x00\x05abcdefgh")) // garbage frame
	f.Add([]byte("garbage without magic"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{NoSync: true})
		if err != nil {
			return // rejected (e.g. bad magic) is fine; panicking is not
		}
		defer w.Close()
		var last uint64
		err = w.Replay(func(r Record) error {
			if r.Seq != last+1 {
				t.Fatalf("replayed seq %d after %d: prefix not contiguous", r.Seq, last)
			}
			last = r.Seq
			if _, ok := typeNames[r.Type]; !ok {
				t.Fatalf("replayed unknown type %d", r.Type)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay of recovered prefix failed: %v", err)
		}
		// the recovered prefix must survive an append + reopen round trip
		if err := w.Append(testRecord(last+1, TypeDispatched, "job-000001")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		w.Close()
		w2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer w2.Close()
		n := 0
		_ = w2.Replay(func(Record) error { n++; return nil })
		if n == 0 {
			t.Fatal("appended record lost on reopen")
		}
		if w2.Metrics().TruncatedTail {
			t.Fatal("repaired log still reports a torn tail")
		}
	})
}
