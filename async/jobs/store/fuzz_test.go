package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLeaseRecordCodec exercises the v2 record frame that carries the lease
// fields: any (job, owner, epoch, expiry, type) combination must round-trip
// encode→decode bit-exactly, and a mutated frame must never decode into a
// record that differs from the original — the CRC either rejects it or the
// mutation was a no-op.
func FuzzLeaseRecordCodec(f *testing.F) {
	f.Add("job-a-000001", "replica-a", int64(1), int64(1700000000_000000000), byte(TypeClaimed), uint16(0), byte(0))
	f.Add("job-b-000042", "b", int64(9_000_000), int64(-5), byte(TypeRenewed), uint16(3), byte(0x80))
	f.Add("", "", int64(0), int64(0), byte(TypeReleased), uint16(7), byte(1))
	f.Add("j", "owner-with-a-rather-long-name", int64(-3), int64(1<<60), byte(TypeDispatched), uint16(100), byte(0xff))

	f.Fuzz(func(t *testing.T, job, owner string, epoch, expiresAt int64, typ byte, flipAt uint16, flipWith byte) {
		rec := Record{
			Seq: 7, Type: Type(typ), Job: job, Time: 1700000000_000000000,
			Owner: owner, Epoch: epoch, ExpiresAt: expiresAt,
		}
		if _, ok := typeNames[rec.Type]; !ok {
			rec.Type = TypeClaimed
		}
		frame := rec.encode(nil)
		got, n, err := decodeRecord(frame)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
		}
		if got.Job != rec.Job || got.Owner != rec.Owner || got.Epoch != rec.Epoch ||
			got.ExpiresAt != rec.ExpiresAt || got.Type != rec.Type || got.Seq != rec.Seq {
			t.Fatalf("lease fields did not round-trip: got %+v, want %+v", got, rec)
		}

		mutated := append([]byte(nil), frame...)
		mutated[int(flipAt)%len(mutated)] ^= flipWith
		got2, _, err := decodeRecord(mutated) // must not panic
		if err == nil && (got2.Owner != rec.Owner || got2.Epoch != rec.Epoch ||
			got2.ExpiresAt != rec.ExpiresAt || got2.Job != rec.Job) {
			t.Fatalf("corrupt frame decoded to different lease fields: %+v", got2)
		}
	})
}

// FuzzReplayWAL feeds arbitrary bytes to the WAL recovery path: Open must
// never panic, and whatever it recovers must be a valid record prefix —
// strictly increasing seqs, decodable types. Seeds cover a clean log, a
// torn tail, a bit flip, and garbage.
func FuzzReplayWAL(f *testing.F) {
	clean := append([]byte(nil), walMagic...)
	for i := 1; i <= 3; i++ {
		r := testRecord(uint64(i), TypeSubmitted, "job-000001")
		r.Seq = uint64(i)
		clean = r.encode(clean)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-9]) // torn tail
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)                                // bit flip mid-log
	f.Add([]byte{})                               // empty file
	f.Add([]byte("AWL1"))                         // magic only
	f.Add([]byte("AWL1\x00\x00\x00\x05abcdefgh")) // garbage frame
	f.Add([]byte("garbage without magic"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{NoSync: true})
		if err != nil {
			return // rejected (e.g. bad magic) is fine; panicking is not
		}
		defer w.Close()
		var last uint64
		err = w.Replay(func(r Record) error {
			if r.Seq != last+1 {
				t.Fatalf("replayed seq %d after %d: prefix not contiguous", r.Seq, last)
			}
			last = r.Seq
			if _, ok := typeNames[r.Type]; !ok {
				t.Fatalf("replayed unknown type %d", r.Type)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay of recovered prefix failed: %v", err)
		}
		// the recovered prefix must survive an append + reopen round trip
		if err := w.Append(testRecord(last+1, TypeDispatched, "job-000001")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		w.Close()
		w2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer w2.Close()
		n := 0
		_ = w2.Replay(func(Record) error { n++; return nil })
		if n == 0 {
			t.Fatal("appended record lost on reopen")
		}
		if w2.Metrics().TruncatedTail {
			t.Fatal("repaired log still reports a torn tail")
		}
	})
}
