package store

import (
	"errors"
	"strings"
	"testing"
)

func TestTypeStringAndTerminal(t *testing.T) {
	for typ, name := range typeNames {
		if typ.String() != name {
			t.Fatalf("Type(%d).String() = %q, want %q", typ, typ.String(), name)
		}
	}
	if s := Type(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown type string %q", s)
	}
	terminal := map[Type]bool{TypeDone: true, TypeFailed: true, TypeCanceled: true}
	for typ := TypeSubmitted; typ <= TypeCanceled; typ++ {
		if typ.Terminal() != terminal[typ] {
			t.Fatalf("%s.Terminal() = %v", typ, typ.Terminal())
		}
	}
}

// TestWALKillFailpoint: Kill simulates death at a record boundary — every
// later mutation fails with ErrClosed, the log is not torn, and a reopen
// recovers everything acknowledged before the kill.
func TestWALKillFailpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if w.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", w.Dir(), dir)
	}
	for i := 0; i < 2; i++ {
		if err := w.Append(testRecord(0, TypeSubmitted, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync before kill: %v", err)
	}
	w.Kill()

	if err := w.Append(testRecord(0, TypeDispatched, "job-000001")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after kill: %v, want ErrClosed", err)
	}
	if err := w.SaveCheckpoint("job-000001", 1, testCheckpoint(10, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("spill after kill: %v, want ErrClosed", err)
	}
	if err := w.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after kill: %v, want ErrClosed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after kill: %v, want ErrClosed", err)
	}
	if err := w.DropJob("job-000001"); !errors.Is(err, ErrClosed) {
		t.Fatalf("drop after kill: %v, want ErrClosed", err)
	}
	if m := w.Metrics(); m.Appends != 2 {
		t.Fatalf("metrics after kill: %+v, want 2 appends", m)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close after kill: %v", err)
	}

	w2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := replayAll(t, w2)
	if len(recs) != 2 {
		t.Fatalf("reopen after kill recovered %d records, want 2", len(recs))
	}
	if w2.Metrics().TruncatedTail {
		t.Fatal("kill at a record boundary must not tear the log")
	}
}

// TestMemStoreLifecycle covers the in-memory seam implementation beyond
// what the parity test touches: DropJob, Sync, Metrics, checkpoint
// replacement, and post-Close errors.
func TestMemStoreLifecycle(t *testing.T) {
	m := NewMem()
	if err := m.Append(testRecord(0, TypeSubmitted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveCheckpoint("job-000001", 1, testCheckpoint(10, 1)); err != nil {
		t.Fatal(err)
	}
	// a newer spill replaces the older one
	if err := m.SaveCheckpoint("job-000001", 2, testCheckpoint(20, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadCheckpoint("job-000001", 1); err == nil {
		t.Fatal("older spill survived replacement")
	}
	cp, err := m.LoadCheckpoint("job-000001", 2)
	if err != nil || cp.Updates != 20 {
		t.Fatalf("newest spill: %+v, %v", cp, err)
	}
	if err := m.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	mm := m.Metrics()
	if mm.Appends != 1 || mm.CheckpointSpills != 2 {
		t.Fatalf("metrics %+v, want appends=1 spills=2", mm)
	}
	if err := m.DropJob("job-000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadCheckpoint("job-000001", 2); err == nil {
		t.Fatal("spill survived DropJob")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(testRecord(0, TypeDispatched, "job-000001")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := m.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v, want ErrClosed", err)
	}
}
