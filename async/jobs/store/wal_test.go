package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/la"
	"repro/internal/opt"
)

func testRecord(seq uint64, typ Type, job string) *Record {
	r := &Record{
		Type: typ, Job: job, Time: 1700000000_000000000 + int64(seq),
		JobSeq: int64(seq), Updates: int64(seq) * 10, DispatchSeq: int64(seq) * 3,
	}
	switch typ {
	case TypeSubmitted:
		r.Spec = []byte(`{"algorithm":"asgd","dataset":{"name":"rcv1-like"}}`)
	case TypeDone:
		r.FinalError, r.HasFinal = 0.25, true
	case TypeFailed, TypeCanceled:
		r.Detail = "engine exploded"
	}
	return r
}

func TestRecordRoundTrip(t *testing.T) {
	types := []Type{TypeSubmitted, TypeDispatched, TypeCheckpointed, TypePreempted, TypeDone, TypeFailed, TypeCanceled}
	var buf []byte
	var want []*Record
	for i, typ := range types {
		r := testRecord(uint64(i+1), typ, "job-000007")
		r.Seq = uint64(i + 1)
		want = append(want, r)
		buf = r.encode(buf)
	}
	off := 0
	for i := range want {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
		w := *want[i]
		if got.Seq != w.Seq || got.Type != w.Type || got.Job != w.Job || got.Time != w.Time ||
			got.JobSeq != w.JobSeq || got.Updates != w.Updates || got.DispatchSeq != w.DispatchSeq ||
			got.Detail != w.Detail || got.HasFinal != w.HasFinal || got.FinalError != w.FinalError ||
			!bytes.Equal(got.Spec, w.Spec) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, w)
		}
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestRecordDecodeRejectsCorruption(t *testing.T) {
	r := testRecord(1, TypeSubmitted, "job-000001")
	frame := r.encode(nil)
	if _, _, err := decodeRecord(frame[:3]); err == nil {
		t.Fatal("short header accepted")
	}
	if _, _, err := decodeRecord(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	for i := 4; i < len(frame); i += 7 {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := decodeRecord(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := decodeRecord(huge); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func replayAll(t *testing.T, s Store) []Record {
	t.Helper()
	var out []Record
	if err := s.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := w.Append(testRecord(uint64(i), TypeSubmitted, "job-00000"+string(rune('0'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	m := w.Metrics()
	if m.Appends != 5 || m.Fsyncs == 0 || m.SizeBytes == 0 {
		t.Fatalf("metrics %+v", m)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := replayAll(t, w2)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Type != TypeSubmitted {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if w2.Metrics().TruncatedTail {
		t.Fatal("clean log reported a truncated tail")
	}
	// appends continue the sequence
	if err := w2.Append(testRecord(6, TypeDispatched, "job-000001")); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(testRecord(uint64(i), TypeSubmitted, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// tear the last record in half — a crash mid-append
	torn := data[:len(data)-17]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := replayAll(t, w2)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(recs))
	}
	if !w2.Metrics().TruncatedTail {
		t.Fatal("torn tail not reported")
	}
	// the torn bytes are gone: appending then reopening yields 3 clean records
	if err := w2.Append(testRecord(9, TypeDispatched, "job-000001")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := replayAll(t, w3); len(got) != 3 || got[2].Type != TypeDispatched {
		t.Fatalf("after repair: %+v", got)
	}
}

func TestWALBitFlipKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := w.Append(testRecord(uint64(i), TypeSubmitted, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// flip one bit two thirds in: records before the flipped one survive
	data[2*len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := replayAll(t, w2)
	if len(recs) == 0 || len(recs) >= 4 {
		t.Fatalf("replayed %d records after bit flip, want a strict valid prefix", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("prefix out of order: %+v", recs)
		}
	}
	if !w2.Metrics().TruncatedTail {
		t.Fatal("bit flip not reported as truncation")
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func testCheckpoint(updates int64, dispatchSeq int64) *opt.Checkpoint {
	cp := &opt.Checkpoint{Algorithm: "asgd", W: la.NewVec(4), Updates: updates}
	cp.W[0] = 0.5
	cp.SetInt("dispatch_seq", dispatchSeq)
	return cp
}

func TestWALCheckpointSpill(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.SaveCheckpoint("job-000001", 10, testCheckpoint(100, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveCheckpoint("job-000001", 20, testCheckpoint(200, 20)); err != nil {
		t.Fatal(err)
	}
	// the newer spill replaced the older
	if _, err := w.LoadCheckpoint("job-000001", 10); err == nil {
		t.Fatal("stale spill survived a newer one")
	}
	cp, err := w.LoadCheckpoint("job-000001", 20)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Updates != 200 || cp.Int("dispatch_seq") != 20 || cp.W[0] != 0.5 {
		t.Fatalf("loaded %+v", cp)
	}
	if err := w.DropJob("job-000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LoadCheckpoint("job-000001", 20); err == nil {
		t.Fatal("spill survived DropJob")
	}
	if _, err := w.LoadCheckpoint("../evil", 1); err == nil {
		t.Fatal("path-traversal job id accepted")
	}
}

func TestWALOpenSweepsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	// a crash mid temp+fsync+rename leaves the temp behind; the spill GC
	// never matches it, so Open must sweep it
	orphan := filepath.Join(dir, "cp-job-000001-5.ckpt.tmp")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp survived Open: %v", err)
	}
}

func TestWALCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 10; i++ {
		if err := w.Append(testRecord(uint64(i), TypeSubmitted, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SaveCheckpoint("job-000001", 5, testCheckpoint(50, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveCheckpoint("job-000002", 7, testCheckpoint(70, 7)); err != nil {
		t.Fatal(err)
	}
	before := w.Metrics().SizeBytes
	snap := []*Record{
		testRecord(1, TypeSubmitted, "job-000002"),
		testRecord(2, TypeDispatched, "job-000002"),
	}
	if err := w.Compact(snap); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.SizeBytes >= before || m.Compactions != 1 || m.AppendsSinceCompact != 0 {
		t.Fatalf("after compact: %+v (size before %d)", m, before)
	}
	// spill GC: job-000001 left the log, its spill goes; job-000002 stays
	if _, err := w.LoadCheckpoint("job-000001", 5); err == nil {
		t.Fatal("dropped job's spill survived compaction")
	}
	if _, err := w.LoadCheckpoint("job-000002", 7); err != nil {
		t.Fatalf("live job's spill lost by compaction: %v", err)
	}
	// appends continue on the new log; a reopen replays snapshot + new tail
	if err := w.Append(testRecord(3, TypeCheckpointed, "job-000002")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := replayAll(t, w2)
	if len(recs) != 3 || recs[0].Job != "job-000002" || recs[2].Type != TypeCheckpointed {
		t.Fatalf("post-compact replay: %+v", recs)
	}
}

func TestWALFailpointTornAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := w.Append(testRecord(uint64(i), TypeSubmitted, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	w.FailAfterAppends(1)
	if err := w.Append(testRecord(3, TypeDispatched, "job-000001")); err != nil {
		t.Fatal(err) // one more append succeeds
	}
	if err := w.Append(testRecord(4, TypeCheckpointed, "job-000001")); err == nil {
		t.Fatal("armed failpoint did not fire")
	}
	// dead store: every mutation fails
	if err := w.Append(testRecord(5, TypePreempted, "job-000001")); err == nil {
		t.Fatal("dead store accepted an append")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("dead store accepted a sync")
	}
	w.Close()
	// recovery keeps the 3 acknowledged records, cuts the torn one
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := replayAll(t, w2)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want the 3 acknowledged", len(recs))
	}
	if !w2.Metrics().TruncatedTail {
		t.Fatal("torn failpoint append not reported")
	}
}

// TestMemStoreParity drives Mem through the same motions to pin the seam's
// contract on both implementations.
func TestMemStoreParity(t *testing.T) {
	m := NewMem()
	for i := 1; i <= 4; i++ {
		if err := m.Append(testRecord(uint64(i), TypeSubmitted, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SaveCheckpoint("job-000001", 9, testCheckpoint(90, 9)); err != nil {
		t.Fatal(err)
	}
	cp, err := m.LoadCheckpoint("job-000001", 9)
	if err != nil || cp.Updates != 90 {
		t.Fatalf("mem load: %v %+v", err, cp)
	}
	if err := m.Compact([]*Record{testRecord(1, TypeSubmitted, "job-000002")}); err != nil {
		t.Fatal(err)
	}
	if recs := replayAll(t, m); len(recs) != 1 || recs[0].Job != "job-000002" {
		t.Fatalf("mem compact: %+v", recs)
	}
	if _, err := m.LoadCheckpoint("job-000001", 9); err == nil {
		t.Fatal("mem compaction kept a dropped job's spill")
	}
	m.Close()
	if err := m.Append(testRecord(9, TypeSubmitted, "job-000003")); err == nil {
		t.Fatal("closed mem store accepted an append")
	}
	m.Reopen()
	if err := m.Append(testRecord(9, TypeSubmitted, "job-000003")); err != nil {
		t.Fatal(err)
	}
}
