package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/opt"
)

// SharedOptions configure one replica's handle onto a shared store
// directory.
type SharedOptions struct {
	// NoSync skips fsyncs (tests and benchmarks only).
	NoSync bool
	// CompactEvery triggers self-compaction once that many records were
	// appended since the last rewrite. 0 uses a default of 4096; negative
	// disables self-compaction.
	CompactEvery int
	// RetainTerminal bounds how many terminal jobs self-compaction keeps in
	// the rewritten log (most recent by finish time). 0 uses a default of
	// 256.
	RetainTerminal int
}

const (
	sharedLockName        = "wal.lock"
	defaultCompactEvery   = 4096
	defaultRetainTerminal = 256
	sharedMagicLen        = 4 // len(walMagic)
)

// Shared is the multi-replica file Store: several replica handles (same
// process or not) share one WAL directory, serialized by an exclusive
// flock on wal.lock around every mutation. Each handle keeps a cached view
// of the log (records, lease table, seq) and refreshes it incrementally
// under the lock before acting, so cross-replica appends, lease claims,
// and even whole-log compaction swaps are observed before any decision is
// made on stale state.
//
// Unlike WAL, Compact ignores the caller's snapshot: no single replica
// sees the whole cluster's live set, so Shared derives the compacted log
// from the log itself (latest submitted/checkpoint/state record per job,
// terminal history bounded by RetainTerminal, lease table re-serialized).
// Other replicas detect the rewrite by inode change and re-read from the
// top; ReplaySince watermarks carry a generation for the same reason.
type Shared struct {
	mu      sync.Mutex
	dir     string
	replica string
	opts    SharedOptions
	lockF   *os.File
	f       *os.File
	off     int64 // validated byte length of our view of wal.log
	seq     uint64
	gen     uint64 // bumped on every observed compaction swap
	records []Record
	lt      *leaseTable
	buf     []byte

	sinceCompact int64
	appends      int64
	fsyncs       int64
	fsyncNS      int64
	compactions  int64
	spills       int64
	claims       int64
	renews       int64
	fenced       int64
	replayed     int64
	truncated    bool

	// failpoints (tests), same semantics as WAL
	failAfter     int64
	armed         bool
	failTransient bool
	dead          bool
	closed        bool
}

// OpenShared opens (creating if needed) the shared store in dir as the
// named replica. Any number of OpenShared handles — across goroutines or
// processes — may serve the same directory concurrently.
func OpenShared(dir, replica string, opts SharedOptions) (*Shared, error) {
	if replica == "" {
		return nil, fmt.Errorf("store: shared open: empty replica id")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	lockF, err := os.OpenFile(filepath.Join(dir, sharedLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock: %w", err)
	}
	s := &Shared{dir: dir, replica: replica, opts: opts, lockF: lockF, lt: newLeaseTable()}
	if s.opts.CompactEvery == 0 {
		s.opts.CompactEvery = defaultCompactEvery
	}
	if s.opts.RetainTerminal == 0 {
		s.opts.RetainTerminal = defaultRetainTerminal
	}
	if err := s.flock(); err != nil {
		lockF.Close()
		return nil, err
	}
	defer s.funlock()
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lockF.Close()
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s.f = f
	fi, err := f.Stat()
	if err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	if fi.Size() == 0 {
		if _, err := f.WriteAt(walMagic, 0); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: init %s: %w", path, err)
		}
		if err := s.syncLog(); err != nil {
			s.closeFiles()
			return nil, err
		}
	} else if err := s.checkMagic(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.off = sharedMagicLen
	if err := s.scanTailLocked(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.replayed = int64(len(s.records))
	walReplayed.Add(s.replayed)
	if s.truncated {
		walTruncations.Inc()
	}
	return s, nil
}

func (s *Shared) closeFiles() {
	if s.f != nil {
		s.f.Close()
	}
	s.lockF.Close()
}

// flock takes the exclusive cross-handle lock; funlock releases it. Each
// handle has its own open file description, so two in-process replicas
// exclude each other exactly like two processes would.
func (s *Shared) flock() error {
	if err := syscall.Flock(int(s.lockF.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("store: flock: %w", err)
	}
	return nil
}

func (s *Shared) funlock() { _ = syscall.Flock(int(s.lockF.Fd()), syscall.LOCK_UN) }

func (s *Shared) checkMagic() error {
	head := make([]byte, sharedMagicLen)
	if _, err := s.f.ReadAt(head, 0); err != nil || !bytes.Equal(head, walMagic) {
		return fmt.Errorf("store: %s is not a WAL (bad magic)", filepath.Join(s.dir, walName))
	}
	return nil
}

// refreshLocked brings the cached view up to date. Must hold mu and the
// flock. Detects a compaction swap (another replica renamed a rewritten
// log over ours) by inode comparison and restarts the view from byte 0;
// then scans any unread tail.
func (s *Shared) refreshLocked() error {
	path := filepath.Join(s.dir, walName)
	dfi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("store: refresh stat: %w", err)
	}
	ffi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: refresh fstat: %w", err)
	}
	if !os.SameFile(dfi, ffi) {
		nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: reopen after compaction: %w", err)
		}
		_ = s.f.Close()
		s.f = nf
		if err := s.checkMagic(); err != nil {
			return err
		}
		s.off = sharedMagicLen
		s.seq = 0
		s.gen++
		s.records = s.records[:0]
		s.lt = newLeaseTable()
	}
	return s.scanTailLocked()
}

// scanTailLocked decodes records from s.off to EOF, folding them into the
// cached view. A torn or corrupt tail (a replica died mid-append) is
// truncated — safe because the flock is held, so no live writer is past
// it.
func (s *Shared) scanTailLocked() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: tail stat: %w", err)
	}
	size := fi.Size()
	if size <= s.off {
		return nil
	}
	data := make([]byte, size-s.off)
	if _, err := s.f.ReadAt(data, s.off); err != nil {
		return fmt.Errorf("store: tail read: %w", err)
	}
	o := 0
	for o < len(data) {
		rec, n, err := decodeRecord(data[o:])
		if err != nil || rec.Seq != s.seq+1 {
			// damaged here: cut the tail and stop
			if err := s.f.Truncate(s.off + int64(o)); err != nil {
				return fmt.Errorf("store: truncate torn tail: %w", err)
			}
			if err := s.syncLog(); err != nil {
				return err
			}
			s.truncated = true
			walTruncations.Inc()
			break
		}
		s.records = append(s.records, rec)
		s.lt.apply(&rec)
		s.seq = rec.Seq
		o += n
	}
	s.off += int64(o)
	return nil
}

func (s *Shared) syncLog() error {
	if s.opts.NoSync {
		return nil
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.fsyncs++
	s.fsyncNS += time.Since(start).Nanoseconds()
	walFsyncLat.ObserveSince(start)
	return nil
}

// appendRecLocked durably writes one record at the tail of the refreshed
// view and folds it into the caches. Fencing is the caller's concern.
// Nothing — seq, offset, caches — advances until the frame is durable: a
// failed write or fsync unwinds the file back to the pre-append tail, so
// seq numbering stays contiguous with the durable log and the next append
// cannot be mistaken for a torn tail by peer replicas.
func (s *Shared) appendRecLocked(rec *Record) error {
	start := time.Now()
	rec.Seq = s.seq + 1
	if rec.Time == 0 {
		rec.Time = start.UnixNano()
	}
	s.buf = rec.encode(s.buf[:0])
	frame := s.buf
	if s.armed {
		if s.failAfter <= 0 {
			// failpoint: tear this append mid-record and die (kill -9
			// between write and ack); the next replica to take the lock
			// truncates the torn tail
			torn := frame[:len(frame)/2]
			_, _ = s.f.WriteAt(torn, s.off)
			s.dead = true
			return ErrClosed
		}
		s.failAfter--
	}
	if err := s.writeFrameLocked(frame); err != nil {
		s.unwindAppendLocked()
		return err
	}
	s.seq = rec.Seq
	s.off += int64(len(frame))
	s.records = append(s.records, *rec)
	s.lt.apply(rec)
	s.appends++
	s.sinceCompact++
	walAppends.Inc()
	walAppendLat.ObserveSince(start)
	return nil
}

// writeFrameLocked lands one encoded frame durably at the validated tail.
func (s *Shared) writeFrameLocked(frame []byte) error {
	if s.failTransient {
		// transient failpoint: half the frame lands before the write errors
		// (ENOSPC-style); unlike the crash failpoint the handle survives
		s.failTransient = false
		_, _ = s.f.WriteAt(frame[:len(frame)/2], s.off)
		return fmt.Errorf("store: append: injected transient write failure")
	}
	if _, err := s.f.WriteAt(frame, s.off); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	return s.syncLog()
}

// unwindAppendLocked restores the log file to the validated tail (s.off)
// after a failed append, discarding any partially-written frame. If even
// the truncate cannot be made durable the handle goes dead — its view can
// no longer be trusted, and the flock holder that follows will cut any
// torn bytes on refresh.
func (s *Shared) unwindAppendLocked() {
	if err := s.f.Truncate(s.off); err != nil {
		s.dead = true
		return
	}
	if err := s.syncLog(); err != nil {
		s.dead = true
	}
}

// Dir returns the store directory.
func (s *Shared) Dir() string { return s.dir }

// Replica returns the handle's replica ID.
func (s *Shared) Replica() string { return s.replica }

// Replay streams the current log from the top. Called once at scheduler
// boot; later cross-replica records arrive through ReplaySince.
func (s *Shared) Replay(fn func(Record) error) error {
	s.mu.Lock()
	if s.dead || s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.flock(); err != nil {
		s.mu.Unlock()
		return err
	}
	err := s.refreshLocked()
	recs := append([]Record(nil), s.records...)
	s.funlock()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Append durably logs one record, fencing ownership-asserting records
// against the live lease table (ErrFenced for stale owners).
func (s *Shared) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return ErrClosed
	}
	if err := s.flock(); err != nil {
		return err
	}
	defer s.funlock()
	if err := s.refreshLocked(); err != nil {
		return err
	}
	if err := s.lt.fence(rec, time.Now()); err != nil {
		s.fenced++
		walFencedAppends.Inc()
		return err
	}
	if err := s.appendRecLocked(rec); err != nil {
		return err
	}
	if s.opts.CompactEvery > 0 && s.sinceCompact >= int64(s.opts.CompactEvery) {
		// best effort: a failed rewrite leaves the (complete) old log
		if err := s.selfCompactLocked(); err != nil {
			return nil
		}
	}
	return nil
}

// Claim acquires the job's lease for this replica via the claim CAS: free,
// expired, or self-held leases are claimable (epoch bumps past every epoch
// ever observed); a live foreign lease fails with ErrLeaseHeld.
func (s *Shared) Claim(job, owner string, ttl time.Duration) (Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return Lease{}, ErrClosed
	}
	if err := s.flock(); err != nil {
		return Lease{}, err
	}
	defer s.funlock()
	if err := s.refreshLocked(); err != nil {
		return Lease{}, err
	}
	l, err := s.lt.claim(job, owner, ttl, time.Now())
	if err != nil {
		return Lease{}, err
	}
	rec := &Record{Type: TypeClaimed, Job: job, Owner: l.Owner, Epoch: l.Epoch, ExpiresAt: l.ExpiresAt}
	if err := s.appendRecLocked(rec); err != nil {
		return Lease{}, err
	}
	s.claims++
	walLeaseClaims.Inc()
	return l, nil
}

// Renew extends this replica's live lease; ErrFenced when the lease
// expired or was superseded (the caller must stop acting as owner and
// re-claim).
func (s *Shared) Renew(job, owner string, epoch int64, ttl time.Duration) (Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return Lease{}, ErrClosed
	}
	if err := s.flock(); err != nil {
		return Lease{}, err
	}
	defer s.funlock()
	if err := s.refreshLocked(); err != nil {
		return Lease{}, err
	}
	l, err := s.lt.renew(job, owner, epoch, ttl, time.Now())
	if err != nil {
		s.fenced++
		walFencedAppends.Inc()
		return Lease{}, err
	}
	rec := &Record{Type: TypeRenewed, Job: job, Owner: owner, Epoch: epoch, ExpiresAt: l.ExpiresAt}
	if err := s.appendRecLocked(rec); err != nil {
		return Lease{}, err
	}
	s.renews++
	walLeaseRenewals.Inc()
	return l, nil
}

// Release ends this replica's lease. Releasing a lease the table no longer
// holds is a no-op; a mismatched live lease is ErrFenced.
func (s *Shared) Release(job, owner string, epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return ErrClosed
	}
	if err := s.flock(); err != nil {
		return err
	}
	defer s.funlock()
	if err := s.refreshLocked(); err != nil {
		return err
	}
	_, held, err := s.lt.release(job, owner, epoch)
	if err != nil {
		s.fenced++
		walFencedAppends.Inc()
		return err
	}
	if !held {
		return nil
	}
	return s.appendRecLocked(&Record{Type: TypeReleased, Job: job, Owner: owner, Epoch: epoch})
}

// Leases snapshots the lease table (expired entries included — they are
// the orphans an adopter scans for).
func (s *Shared) Leases() ([]Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return nil, ErrClosed
	}
	if err := s.flock(); err != nil {
		return nil, err
	}
	defer s.funlock()
	if err := s.refreshLocked(); err != nil {
		return nil, err
	}
	return s.lt.snapshot(), nil
}

// ReplaySince streams records appended after the watermark; a compaction
// swap bumps the generation and the rewritten log replays from its top.
func (s *Shared) ReplaySince(w Watermark, fn func(Record) error) (Watermark, error) {
	s.mu.Lock()
	if s.dead || s.closed {
		s.mu.Unlock()
		return w, ErrClosed
	}
	if err := s.flock(); err != nil {
		s.mu.Unlock()
		return w, err
	}
	err := s.refreshLocked()
	from := 0
	if err == nil && w.Gen == s.gen && w.Seq <= uint64(len(s.records)) {
		from = int(w.Seq)
	}
	recs := append([]Record(nil), s.records[from:]...)
	out := Watermark{Gen: s.gen, Seq: s.seq}
	s.funlock()
	s.mu.Unlock()
	if err != nil {
		return w, err
	}
	for _, r := range recs {
		if err := fn(r); err != nil {
			return w, err
		}
	}
	return out, nil
}

// SaveCheckpoint durably spills cp keyed by (job, dispatchSeq) — temp
// file, fsync, rename — then removes the job's older spills. Spills need
// no flock: job IDs are replica-unique at submission and lease-owned
// afterwards, so two replicas never spill the same job concurrently.
func (s *Shared) SaveCheckpoint(job string, dispatchSeq int64, cp *opt.Checkpoint) error {
	name, err := ckptName(job, dispatchSeq)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return ErrClosed
	}
	var buf bytes.Buffer
	if err := opt.SaveCheckpoint(&buf, cp); err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	if !s.opts.NoSync {
		start := time.Now()
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: fsync: %w", err)
		}
		s.fsyncs++
		s.fsyncNS += time.Since(start).Nanoseconds()
		walFsyncLat.ObserveSince(start)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: spill %s: %w", job, err)
	}
	s.spills++
	walSpills.Inc()
	dropSpillFiles(s.dir, job, name)
	return nil
}

// LoadCheckpoint loads the spill keyed by (job, dispatchSeq).
func (s *Shared) LoadCheckpoint(job string, dispatchSeq int64) (*opt.Checkpoint, error) {
	name, err := ckptName(job, dispatchSeq)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: load checkpoint %s@%d: %w", job, dispatchSeq, err)
	}
	defer f.Close()
	return opt.LoadCheckpoint(f)
}

// DropJob removes all spilled checkpoints of a terminal job.
func (s *Shared) DropJob(job string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return ErrClosed
	}
	dropSpillFiles(s.dir, job, "")
	return nil
}

// Compact rewrites the shared log. The caller's snapshot is IGNORED: a
// replica's local snapshot misses every job other replicas own, so
// compacting to it would destroy cluster state. Shared instead derives the
// snapshot from the log itself (see selfCompactLocked).
func (s *Shared) Compact([]*Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return ErrClosed
	}
	if err := s.flock(); err != nil {
		return err
	}
	defer s.funlock()
	if err := s.refreshLocked(); err != nil {
		return err
	}
	return s.selfCompactLocked()
}

// selfCompactLocked rewrites the log from the log: per job the latest
// submitted, checkpoint, and state-defining records survive (terminal jobs
// keep only submitted + terminal, bounded to the RetainTerminal most
// recent), and the lease table is re-serialized so claims and epoch
// high-waters outlive the rewrite. Atomic: temp log, fsync, rename; a
// crash leaves either complete log. Other replicas detect the swap by
// inode change on their next refresh.
func (s *Shared) selfCompactLocked() error {
	type agg struct {
		submitted *Record
		ckpt      *Record
		state     *Record // latest dispatched/preempted
		terminal  *Record
	}
	byJob := map[string]*agg{}
	var order []string
	for i := range s.records {
		rec := &s.records[i]
		a := byJob[rec.Job]
		if a == nil {
			a = &agg{}
			byJob[rec.Job] = a
			order = append(order, rec.Job)
		}
		switch rec.Type {
		case TypeSubmitted:
			a.submitted = rec
		case TypeCheckpointed:
			a.ckpt = rec
		case TypeDispatched, TypePreempted:
			a.state = rec
		case TypeDone, TypeFailed, TypeCanceled:
			a.terminal = rec
		}
	}
	// bound terminal history: most recent RetainTerminal finish times win
	var terminalJobs []string
	for _, job := range order {
		if a := byJob[job]; a.terminal != nil {
			terminalJobs = append(terminalJobs, job)
		}
	}
	drop := map[string]bool{}
	if over := len(terminalJobs) - s.opts.RetainTerminal; over > 0 {
		sort.Slice(terminalJobs, func(i, j int) bool {
			return byJob[terminalJobs[i]].terminal.Time < byJob[terminalJobs[j]].terminal.Time
		})
		for _, job := range terminalJobs[:over] {
			drop[job] = true
		}
	}
	var snapshot []*Record
	for _, job := range order {
		a := byJob[job]
		if a.submitted == nil || drop[job] {
			continue
		}
		snapshot = append(snapshot, a.submitted)
		if a.terminal != nil {
			snapshot = append(snapshot, a.terminal)
			continue
		}
		if a.ckpt != nil {
			snapshot = append(snapshot, a.ckpt)
		}
		if a.state != nil {
			snapshot = append(snapshot, a.state)
		}
	}
	snapshot = append(snapshot, s.lt.snapshotRecords(time.Now().UnixNano())...)

	tmp := filepath.Join(s.dir, walName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	buf := append(s.buf[:0], walMagic...)
	keep := make(map[string]bool, len(snapshot))
	newRecs := make([]Record, 0, len(snapshot))
	for i, rec := range snapshot {
		cp := *rec
		cp.Seq = uint64(i + 1)
		buf = cp.encode(buf)
		keep[cp.Job] = true
		newRecs = append(newRecs, cp)
	}
	s.buf = buf[:0]
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: compact fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	path := filepath.Join(s.dir, walName)
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact reopen: %w", err)
	}
	_ = s.f.Close()
	s.f = nf
	s.gen++
	s.seq = uint64(len(newRecs))
	s.off = int64(len(buf))
	s.records = newRecs
	s.sinceCompact = 0
	s.compactions++
	s.appends += int64(len(newRecs))
	walCompactions.Inc()
	walAppends.Add(int64(len(newRecs)))
	// GC spills of jobs the compacted log no longer mentions
	entries, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range entries {
			n := e.Name()
			if !strings.HasPrefix(n, "cp-") || !strings.HasSuffix(n, ".ckpt") {
				continue
			}
			core := strings.TrimSuffix(strings.TrimPrefix(n, "cp-"), ".ckpt")
			if i := strings.LastIndexByte(core, '-'); i > 0 {
				core = core[:i]
			}
			if !keep[core] {
				_ = os.Remove(filepath.Join(s.dir, n))
			}
		}
	}
	return nil
}

// Sync fsyncs the log (graceful-shutdown flush).
func (s *Shared) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return ErrClosed
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.fsyncs++
	s.fsyncNS += time.Since(start).Nanoseconds()
	walFsyncLat.ObserveSince(start)
	return nil
}

// Metrics snapshots the counters.
func (s *Shared) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Appends:             s.appends,
		AppendsSinceCompact: s.sinceCompact,
		Fsyncs:              s.fsyncs,
		FsyncTotal:          time.Duration(s.fsyncNS),
		SizeBytes:           s.off,
		Compactions:         s.compactions,
		CheckpointSpills:    s.spills,
		ReplayedRecords:     s.replayed,
		TruncatedTail:       s.truncated,
		LeaseClaims:         s.claims,
		LeaseRenewals:       s.renews,
		LeasesHeld:          int64(len(s.lt.leases)),
		FencedAppends:       s.fenced,
	}
}

// Close releases the handle's files. The shared log stays live for other
// replicas.
func (s *Shared) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Close()
	_ = s.lockF.Close()
	return err
}

// FailAfterAppends arms the crash failpoint: the next n appends succeed,
// then the following one tears mid-record and this handle goes dead —
// the surviving replicas truncate the torn tail on their next refresh.
// Testing hook.
func (s *Shared) FailAfterAppends(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = true
	s.failAfter = n
}

// FailNextAppendTransient arms a one-shot transient append failure: half
// the next frame lands before the write errors, but the handle survives
// (unlike FailAfterAppends) — exercising the rollback that keeps seq
// numbering contiguous with the durable log. Testing hook.
func (s *Shared) FailNextAppendTransient() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failTransient = true
}

// Kill makes this handle drop every subsequent mutation (ErrClosed)
// without tearing the log — a process death at a record boundary. Testing
// hook.
func (s *Shared) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = true
}

// dropSpillFiles removes job's spill files in dir except keep ("" = all).
func dropSpillFiles(dir, job, keep string) {
	prefix := "cp-" + job + "-"
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, prefix) && strings.HasSuffix(n, ".ckpt") && n != keep {
			_ = os.Remove(filepath.Join(dir, n))
		}
	}
}
