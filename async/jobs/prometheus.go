package jobs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the scheduler's serving and durability counters
// in the Prometheus text exposition format (version 0.0.4), hand-rolled so
// the daemon stays dependency-free. Scrape it at /v1/metrics.
func (s *Scheduler) WritePrometheus(w io.Writer) {
	st := s.Stats()
	var sm *storeMetricsView
	s.mu.Lock()
	uptime := time.Since(s.startedAt).Seconds()
	if s.cfg.Store != nil {
		m := s.cfg.Store.Metrics()
		sm = &storeMetricsView{
			appends:     m.Appends,
			fsyncs:      m.Fsyncs,
			fsyncTotal:  m.FsyncTotal.Seconds(),
			sizeBytes:   m.SizeBytes,
			compactions: m.Compactions,
			spills:      m.CheckpointSpills,
			replayed:    m.ReplayedRecords,
		}
	}
	s.mu.Unlock()

	counter := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}

	counter("asyncd_jobs_submitted_total", "Jobs accepted by Submit.", st.Submitted)
	counter("asyncd_jobs_rejected_total", "Jobs rejected by admission control (queue depth or tenant quota).", st.Rejected)
	counter("asyncd_jobs_done_total", "Jobs completed successfully.", st.Done)
	counter("asyncd_jobs_failed_total", "Jobs that terminated with an error.", st.Failed)
	counter("asyncd_jobs_canceled_total", "Jobs canceled before completion.", st.Canceled)
	counter("asyncd_jobs_preempted_total", "Mid-run preemptions (priority, SLO, or explicit).", st.Preempted)
	gauge("asyncd_jobs_queued", "Jobs waiting for an engine (preempted included).", st.Queued)
	gauge("asyncd_jobs_running", "Jobs holding an engine.", st.Running)
	gauge("asyncd_engines_live", "Engines spun up in the pool.", st.EnginesLive)
	gauge("asyncd_engines_max", "Engine-pool ceiling.", st.EnginesMax)
	gauge("asyncd_queue_depth_limit", "Bound on the waiting queue.", st.QueueDepth)
	gauge("asyncd_queue_wait_avg_seconds", "Mean queue wait of dispatched runs.", st.AvgQueueWaitMS/1000.0)
	gauge("asyncd_queue_wait_max_seconds", "Max queue wait of dispatched runs.", st.MaxQueueWaitMS/1000.0)
	gauge("asyncd_uptime_seconds", "Seconds since the scheduler was built.", uptime)
	if uptime > 0 {
		gauge("asyncd_jobs_completed_per_second", "Completed jobs per second of uptime.", float64(st.Done)/uptime)
	}

	if len(st.Tenants) > 0 {
		names := make([]string, 0, len(st.Tenants))
		for t := range st.Tenants {
			names = append(names, t)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP asyncd_tenant_jobs_submitted_total Jobs accepted, by tenant.\n# TYPE asyncd_tenant_jobs_submitted_total counter\n")
		for _, t := range names {
			fmt.Fprintf(w, "asyncd_tenant_jobs_submitted_total{tenant=\"%s\"} %d\n", escapeLabel(t), st.Tenants[t].Submitted)
		}
		fmt.Fprintf(w, "# HELP asyncd_tenant_jobs_rejected_total Jobs rejected, by tenant.\n# TYPE asyncd_tenant_jobs_rejected_total counter\n")
		for _, t := range names {
			fmt.Fprintf(w, "asyncd_tenant_jobs_rejected_total{tenant=\"%s\"} %d\n", escapeLabel(t), st.Tenants[t].Rejected)
		}
		fmt.Fprintf(w, "# HELP asyncd_tenant_jobs_queued Jobs waiting, by tenant.\n# TYPE asyncd_tenant_jobs_queued gauge\n")
		for _, t := range names {
			fmt.Fprintf(w, "asyncd_tenant_jobs_queued{tenant=\"%s\"} %d\n", escapeLabel(t), st.Tenants[t].Queued)
		}
		fmt.Fprintf(w, "# HELP asyncd_tenant_jobs_running Jobs holding an engine, by tenant.\n# TYPE asyncd_tenant_jobs_running gauge\n")
		for _, t := range names {
			fmt.Fprintf(w, "asyncd_tenant_jobs_running{tenant=\"%s\"} %d\n", escapeLabel(t), st.Tenants[t].Running)
		}
	}

	if sm != nil {
		counter("asyncd_wal_appends_total", "Durably acknowledged log records.", sm.appends)
		counter("asyncd_wal_fsync_seconds_count", "Fsyncs paid by the append path.", sm.fsyncs)
		counter("asyncd_wal_fsync_seconds_sum", "Total fsync latency, seconds.", sm.fsyncTotal)
		gauge("asyncd_wal_size_bytes", "Current log size.", sm.sizeBytes)
		counter("asyncd_wal_compactions_total", "Log rewrites to the live set.", sm.compactions)
		counter("asyncd_wal_checkpoint_spills_total", "Durable checkpoint files written.", sm.spills)
		gauge("asyncd_wal_replayed_records", "Records the last open recovered.", sm.replayed)
		counter("asyncd_store_errors_total", "Store operations that failed after recovery.", st.StoreErrors)
		gauge("asyncd_recovery_seconds", "Wall time of the boot-time log replay.", st.RecoveryMS/1000.0)
		gauge("asyncd_recovered_jobs", "Jobs rebuilt by the boot-time replay.", st.RecoveredJobs)
	}
}

// storeMetricsView carries the store counters out of the locked section.
type storeMetricsView struct {
	appends     int64
	fsyncs      int64
	fsyncTotal  float64
	sizeBytes   int64
	compactions int64
	spills      int64
	replayed    int64
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
