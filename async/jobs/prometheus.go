package jobs

import (
	"io"
	"time"

	"repro/internal/telemetry"
)

// The scheduler's metrics live on a private telemetry registry so two
// schedulers in one process never collide: the serving counters are
// registered as scrape-time functions over a snapshot (Stats plus the store
// mirror) refreshed at the top of every WritePrometheus, and the queue-wait
// histograms are live instruments observed at dispatch. The process-global
// registry (async_core_*, async_opt_*, async_wal_*, async_wire_*) is
// appended after the scheduler's own families.

// registerMetrics builds the scheduler's registry. Called once from New,
// before recovery (recovery dispatches jobs, which observes the queue-wait
// histograms).
func (s *Scheduler) registerMetrics() {
	r := telemetry.NewRegistry()
	s.reg = r

	snap := func(f func(st *Stats) float64) func() float64 {
		return func() float64 {
			s.scrapeMu.Lock()
			defer s.scrapeMu.Unlock()
			return f(&s.scrape)
		}
	}
	r.CounterFunc("asyncd_jobs_submitted_total", "Jobs accepted by Submit.",
		snap(func(st *Stats) float64 { return float64(st.Submitted) }))
	r.CounterFunc("asyncd_jobs_rejected_total", "Jobs rejected by admission control (queue depth or tenant quota).",
		snap(func(st *Stats) float64 { return float64(st.Rejected) }))
	r.CounterFunc("asyncd_jobs_done_total", "Jobs completed successfully.",
		snap(func(st *Stats) float64 { return float64(st.Done) }))
	r.CounterFunc("asyncd_jobs_failed_total", "Jobs that terminated with an error.",
		snap(func(st *Stats) float64 { return float64(st.Failed) }))
	r.CounterFunc("asyncd_jobs_canceled_total", "Jobs canceled before completion.",
		snap(func(st *Stats) float64 { return float64(st.Canceled) }))
	r.CounterFunc("asyncd_jobs_preempted_total", "Mid-run preemptions (priority, SLO, or explicit).",
		snap(func(st *Stats) float64 { return float64(st.Preempted) }))
	r.GaugeFunc("asyncd_jobs_queued", "Jobs waiting for an engine (preempted included).",
		snap(func(st *Stats) float64 { return float64(st.Queued) }))
	r.GaugeFunc("asyncd_jobs_running", "Jobs holding an engine.",
		snap(func(st *Stats) float64 { return float64(st.Running) }))
	r.GaugeFunc("asyncd_engines_live", "Engines spun up in the pool.",
		snap(func(st *Stats) float64 { return float64(st.EnginesLive) }))
	r.GaugeFunc("asyncd_engines_max", "Engine-pool ceiling.",
		snap(func(st *Stats) float64 { return float64(st.EnginesMax) }))
	r.GaugeFunc("asyncd_queue_depth_limit", "Bound on the waiting queue.",
		snap(func(st *Stats) float64 { return float64(st.QueueDepth) }))
	r.GaugeFunc("asyncd_queue_wait_avg_seconds", "Mean queue wait of dispatched runs.",
		snap(func(st *Stats) float64 { return st.AvgQueueWaitMS / 1000.0 }))
	r.GaugeFunc("asyncd_queue_wait_max_seconds", "Max queue wait of dispatched runs.",
		snap(func(st *Stats) float64 { return st.MaxQueueWaitMS / 1000.0 }))
	r.GaugeFunc("asyncd_uptime_seconds", "Seconds since the scheduler was built.", func() float64 {
		s.scrapeMu.Lock()
		defer s.scrapeMu.Unlock()
		return s.scrapeUptime
	})
	r.GaugeFunc("asyncd_jobs_completed_per_second", "Completed jobs per second of uptime.", func() float64 {
		s.scrapeMu.Lock()
		defer s.scrapeMu.Unlock()
		if s.scrapeUptime <= 0 {
			return 0
		}
		return float64(s.scrape.Done) / s.scrapeUptime
	})

	tenantC := func(f func(ts TenantStats) float64) func(emit func(string, float64)) {
		return func(emit func(string, float64)) {
			s.scrapeMu.Lock()
			defer s.scrapeMu.Unlock()
			for t, ts := range s.scrape.Tenants {
				emit(t, f(ts))
			}
		}
	}
	r.LabeledCounterFunc("asyncd_tenant_jobs_submitted_total", "Jobs accepted, by tenant.", "tenant",
		tenantC(func(ts TenantStats) float64 { return float64(ts.Submitted) }))
	r.LabeledCounterFunc("asyncd_tenant_jobs_rejected_total", "Jobs rejected, by tenant.", "tenant",
		tenantC(func(ts TenantStats) float64 { return float64(ts.Rejected) }))
	r.LabeledGaugeFunc("asyncd_tenant_jobs_queued", "Jobs waiting, by tenant.", "tenant",
		tenantC(func(ts TenantStats) float64 { return float64(ts.Queued) }))
	r.LabeledGaugeFunc("asyncd_tenant_jobs_running", "Jobs holding an engine, by tenant.", "tenant",
		tenantC(func(ts TenantStats) float64 { return float64(ts.Running) }))

	s.mQWaitPrio = r.HistogramVec("asyncd_queue_wait_seconds",
		"Queue wait before dispatch, by priority.", "priority", telemetry.LatencyBuckets())
	s.mQWaitTenant = r.HistogramVec("asyncd_tenant_queue_wait_seconds",
		"Queue wait before dispatch, by tenant.", "tenant", telemetry.LatencyBuckets())

	if s.cfg.Store == nil {
		return
	}
	stor := func(f func(sm *storeMetricsView) float64) func() float64 {
		return func() float64 {
			s.scrapeMu.Lock()
			defer s.scrapeMu.Unlock()
			if s.scrapeStore == nil {
				return 0
			}
			return f(s.scrapeStore)
		}
	}
	r.CounterFunc("asyncd_wal_appends_total", "Durably acknowledged log records.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.appends) }))
	r.CounterFunc("asyncd_wal_fsync_seconds_count", "Fsyncs paid by the append path.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.fsyncs) }))
	r.CounterFunc("asyncd_wal_fsync_seconds_sum", "Total fsync latency, seconds.",
		stor(func(sm *storeMetricsView) float64 { return sm.fsyncTotal }))
	r.GaugeFunc("asyncd_wal_size_bytes", "Current log size.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.sizeBytes) }))
	r.CounterFunc("asyncd_wal_compactions_total", "Log rewrites to the live set.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.compactions) }))
	r.CounterFunc("asyncd_wal_checkpoint_spills_total", "Durable checkpoint files written.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.spills) }))
	r.GaugeFunc("asyncd_wal_replayed_records", "Records the last open recovered.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.replayed) }))
	r.CounterFunc("asyncd_store_errors_total", "Store operations that failed after recovery.",
		snap(func(st *Stats) float64 { return float64(st.StoreErrors) }))
	r.GaugeFunc("asyncd_recovery_seconds", "Wall time of the boot-time log replay.",
		snap(func(st *Stats) float64 { return st.RecoveryMS / 1000.0 }))
	r.GaugeFunc("asyncd_recovered_jobs", "Jobs rebuilt by the boot-time replay.",
		snap(func(st *Stats) float64 { return float64(st.RecoveredJobs) }))
	r.GaugeFunc("asyncd_degraded", "1 while the store is erroring and submissions are rejected.",
		snap(func(st *Stats) float64 {
			if st.Degraded {
				return 1
			}
			return 0
		}))
	r.CounterFunc("asyncd_jobs_retried_total", "Transient run failures re-queued under Spec.MaxRetries.",
		snap(func(st *Stats) float64 { return float64(st.Retries) }))

	if s.cfg.ReplicaID == "" {
		return
	}
	r.GaugeFunc("asyncd_leases_held", "Job leases this replica currently holds.",
		snap(func(st *Stats) float64 { return float64(st.LeasesHeld) }))
	r.GaugeFunc("asyncd_remote_jobs", "Non-terminal jobs owned by other replicas.",
		snap(func(st *Stats) float64 { return float64(st.RemoteJobs) }))
	r.CounterFunc("asyncd_fenced_total", "Runs abandoned after losing their lease (stale epoch).",
		snap(func(st *Stats) float64 { return float64(st.Fenced) }))
	r.CounterFunc("asyncd_jobs_adopted_total", "Orphaned jobs adopted after their owner's lease expired.",
		snap(func(st *Stats) float64 { return float64(st.Adopted) }))
	r.CounterFunc("asyncd_lease_claims_total", "Lease claims acknowledged by the shared store.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.leaseClaims) }))
	r.CounterFunc("asyncd_lease_renewals_total", "Lease renewals acknowledged by the shared store.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.leaseRenewals) }))
	r.CounterFunc("asyncd_fenced_appends_total", "Appends the shared store rejected with a stale fencing token.",
		stor(func(sm *storeMetricsView) float64 { return float64(sm.fencedAppends) }))
	s.mFailover = r.Histogram("asyncd_failover_seconds",
		"Latency from an orphan's lease expiry to its adoption claim.", telemetry.LatencyBuckets())
}

// WritePrometheus renders the scheduler's serving and durability counters in
// the Prometheus text exposition format (version 0.0.4), followed by the
// process-global instrumentation of the lower layers. Scrape it at
// /v1/metrics. Dependency-free: the registry is internal/telemetry.
func (s *Scheduler) WritePrometheus(w io.Writer) {
	st := s.Stats()
	var sm *storeMetricsView
	s.mu.Lock()
	uptime := time.Since(s.startedAt).Seconds()
	if s.cfg.Store != nil {
		m := s.cfg.Store.Metrics()
		sm = &storeMetricsView{
			appends:       m.Appends,
			fsyncs:        m.Fsyncs,
			fsyncTotal:    m.FsyncTotal.Seconds(),
			sizeBytes:     m.SizeBytes,
			compactions:   m.Compactions,
			spills:        m.CheckpointSpills,
			replayed:      m.ReplayedRecords,
			leaseClaims:   m.LeaseClaims,
			leaseRenewals: m.LeaseRenewals,
			fencedAppends: m.FencedAppends,
		}
	}
	s.mu.Unlock()
	s.scrapeMu.Lock()
	s.scrape = st
	s.scrapeUptime = uptime
	s.scrapeStore = sm
	s.scrapeMu.Unlock()
	s.reg.WritePrometheus(w)
	telemetry.Default().WritePrometheus(w)
}

// storeMetricsView carries the store counters out of the locked section.
type storeMetricsView struct {
	appends       int64
	fsyncs        int64
	fsyncTotal    float64
	sizeBytes     int64
	compactions   int64
	spills        int64
	replayed      int64
	leaseClaims   int64
	leaseRenewals int64
	fencedAppends int64
}
