package async_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/async"
	"repro/internal/straggler"
)

// TestBarrierAndFilterConstructors covers the re-exported barrier/filter
// surface: each constructor yields a usable predicate and the engine
// accepts them as defaults.
func TestBarrierAndFilterConstructors(t *testing.T) {
	for name, b := range map[string]async.Barrier{
		"ASP":          async.ASP(),
		"BSP":          async.BSP(),
		"SSP":          async.SSP(2),
		"MinAvailable": async.MinAvailable(0.5),
	} {
		if b == nil {
			t.Fatalf("%s returned a nil barrier", name)
		}
	}
	if async.MaxAvgTaskTime(time.Second) == nil {
		t.Fatal("MaxAvgTaskTime returned a nil filter")
	}
	if async.PSP(0.5, rand.New(rand.NewSource(1))) == nil {
		t.Fatal("PSP returned a nil filter")
	}
}

// TestRunStatsAfterSolve: a BSP engine with a (zero-delay) straggler model
// completes a solve and reports coherent coordinator statistics.
func TestRunStatsAfterSolve(t *testing.T) {
	eng, err := async.New(
		async.WithWorkers(2),
		async.WithSeed(3),
		async.WithBarrier(async.BSP()),
		async.WithStraggler(straggler.None{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := tinyData(t, 6)
	if _, err := eng.Solve(context.Background(), "ASGD", d, async.SolveOptions{Params: tinyParams(40)}); err != nil {
		t.Fatal(err)
	}
	rs := eng.RunStats()
	if rs.Updates != 40 {
		t.Fatalf("RunStats.Updates = %d, want 40", rs.Updates)
	}
	if rs.Pending < 0 {
		t.Fatalf("RunStats.Pending = %d", rs.Pending)
	}
	if len(rs.StalenessHist) == 0 {
		t.Fatal("staleness histogram empty after a 40-update solve")
	}
	if len(rs.WorkerWaitMS) == 0 {
		t.Fatal("per-worker wait map empty after a 40-update solve")
	}
}
