package async

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/rdd"
)

// Data is the distributed dataset handle Distribute returns: the base RDD
// of labelled points, with the usual transformations (Sample, Filter,
// Count, ...) available on it.
type Data = rdd.RDD[rdd.Point]

// Result bundles a solver run's convergence trace and final model.
type Result = opt.Result

// SolveOptions configures one Solve call: the shared opt.Params (step
// schedule, sampling rate, update budget, barrier override, ...), the
// structured composite Objective, the reference optimum FStar for error
// traces, and the per-family extension knobs. A nil Barrier inherits the
// engine's WithBarrier default.
type SolveOptions = opt.SolveConfig

// Objective is the structured composite-objective description:
// a named loss plus optional ℓ2 (ridge) and ℓ1 (sparsity) penalties.
// Set it on SolveOptions.Objective instead of constructing a Loss by hand;
// Solve resolves it before the solver runs.
type Objective = opt.ObjectiveSpec

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("async: engine is closed")

// ErrBusy is returned by Solve while another Solve is in flight: an engine
// has one coordinator queue, so concurrent runs would consume each other's
// task results. Run solves sequentially, or use one engine per run.
var ErrBusy = errors.New("async: engine is already running a solve")

// Engine owns the full ASYNC stack lifecycle: the cluster (local
// goroutines or TCP), the RDD dataflow context, and the Asynchronous
// Context (coordinator + scheduler + broadcaster). Create one with New,
// release it with Close.
type Engine struct {
	cfg config

	mu      sync.Mutex
	c       *cluster.Cluster
	closer  io.Closer
	rctx    *rdd.Context
	ac      *core.Context
	points  *Data
	data    *dataset.Dataset
	solving bool
	ran     bool // a Solve has run: the next one must ResetRun first
	closed  bool
}

// resetTimeout bounds how long a reused engine waits for the previous
// run's stray in-flight tasks before starting the next run.
const resetTimeout = 5 * time.Second

// New builds an engine from functional options and connects its transport
// (for TCP this blocks until all workers have dialled in).
func New(opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.partitions == 0 {
		cfg.partitions = 2 * cfg.workers
	}
	c, closer, err := cfg.transport.connect(cluster.Config{
		NumWorkers:  cfg.workers,
		Delay:       cfg.delay,
		Seed:        cfg.seed,
		MinTaskTime: cfg.minTask,
	})
	if err != nil {
		return nil, fmt.Errorf("async: connect transport: %w", err)
	}
	rctx := rdd.NewContext(c)
	ac := core.New(rctx)
	ac.BarrierTimeout = cfg.barrierTimeout
	return &Engine{cfg: cfg, c: c, closer: closer, rctx: rctx, ac: ac}, nil
}

// Close tears the stack down in dependency order: coordinator, cluster,
// then the transport's listener. It is idempotent and safe to defer
// alongside explicit error-path closes.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.ac.Close()
	e.c.Shutdown()
	if e.closer != nil {
		return e.closer.Close()
	}
	return nil
}

// Distribute splits d across the engine's workers (WithPartitions blocks,
// round-robin placement, driver-side lineage roots for recovery) and
// returns the distributed handle. An engine holds one dataset at a time
// (Release swaps it); Solve calls use the handle automatically.
func (e *Engine) Distribute(d *dataset.Dataset) (*Data, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.distributeLocked(d)
}

func (e *Engine) distributeLocked(d *dataset.Dataset) (*Data, error) {
	if d == nil {
		return nil, errors.New("async: Distribute(nil)")
	}
	if e.closed {
		return nil, ErrClosed
	}
	if e.data != nil {
		if e.data == d {
			return e.points, nil
		}
		return nil, fmt.Errorf("async: engine already holds dataset %q; Release it before distributing %q", e.data.Name, d.Name)
	}
	points, err := e.rctx.Distribute(d, e.cfg.partitions)
	if err != nil {
		return nil, err
	}
	e.points = points
	e.data = d
	return points, nil
}

// Release drops the engine's held dataset: partition placement and
// driver-side lineage roots are cleared, so a subsequent Distribute (or
// Solve) may load a different dataset onto the same warm cluster instead of
// forcing engine churn. It fails with ErrBusy while a solve is in flight.
// Releasing an engine that holds nothing is a no-op.
func (e *Engine) Release() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.solving {
		return ErrBusy
	}
	if e.data == nil {
		return nil
	}
	e.rctx.Release()
	e.points = nil
	e.data = nil
	return nil
}

// Dataset returns the dataset the engine currently holds, nil before
// Distribute or after Release.
func (e *Engine) Dataset() *dataset.Dataset {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.data
}

// Solve runs the named registered solver on d, distributing it first if
// needed. ctx cancellation or deadline expiry is threaded through the AC,
// aborting barrier waits and result collection mid-run. A nil
// opts.Barrier inherits the engine's WithBarrier default. An engine runs
// one solve at a time: a Solve while another is in flight fails with
// ErrBusy (the runs would share one result queue).
func (e *Engine) Solve(ctx context.Context, algorithm string, d *dataset.Dataset, opts SolveOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d == nil {
		return nil, errors.New("async: Solve needs a dataset")
	}
	s, err := Lookup(algorithm)
	if err != nil {
		return nil, err
	}
	// resolve the structured objective here too (the builtin registry also
	// does, idempotently) so custom-registered solvers see Params.Loss set
	if err := opts.ApplyObjective(); err != nil {
		return nil, err
	}
	if opts.Barrier == nil {
		opts.Barrier = e.cfg.barrier
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = e.cfg.checkpointEvery
	}
	// distribute and claim the engine in one critical section: a Release
	// sneaking in between them would pull the placement out from under the
	// run (Release checks the solving flag under this same mutex)
	e.mu.Lock()
	if e.solving {
		e.mu.Unlock()
		return nil, ErrBusy
	}
	if _, err := e.distributeLocked(d); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.solving = true
	reused := e.ran
	e.ran = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.solving = false
		e.mu.Unlock()
	}()
	if reused {
		// a fresh run must not inherit the previous run's logical clock
		// (which would consume its update budget), stray results, wait
		// statistics, or worker-local history
		if err := e.ac.ResetRun(resetTimeout); err != nil {
			return nil, fmt.Errorf("async: reset engine between runs: %w", err)
		}
	}
	return s.Solve(ctx, e, d, opts)
}

// SolveFrom resumes a checkpointed run: the solver comes from the
// checkpoint's recorded algorithm, the full driver state (model, update
// clock, solver accumulators) is imported, and the run continues until
// opts' global update budget is reached. Preempted jobs and restart-based
// schemes both resume through here.
func (e *Engine) SolveFrom(ctx context.Context, cp *opt.Checkpoint, d *dataset.Dataset, opts SolveOptions) (*Result, error) {
	if cp == nil {
		return nil, errors.New("async: SolveFrom(nil checkpoint)")
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	opts.Params.Resume = cp
	return e.Solve(ctx, cp.Algorithm, d, opts)
}

// Context exposes the underlying Asynchronous Context for drivers that use
// the raw Table-1 primitives (ASYNCbroadcast, ASYNCbarrier, ASYNCreduce,
// ASYNCcollect) directly.
func (e *Engine) Context() *core.Context { return e.ac }

// RDD exposes the dataflow context (broadcast store, partition placement,
// synchronous stage execution).
func (e *Engine) RDD() *rdd.Context { return e.rctx }

// Cluster exposes the worker pool (liveness, fetch counters, elastic
// scale-out).
func (e *Engine) Cluster() *cluster.Cluster { return e.c }

// Points returns the distributed dataset handle, nil before Distribute.
func (e *Engine) Points() *Data {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.points
}

// Workers reports the configured worker-pool size.
func (e *Engine) Workers() int { return e.cfg.workers }
