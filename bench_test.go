// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks, one per artifact, plus ablation and
// substrate micro-benchmarks. Reported custom metrics carry the headline
// quantities (speedups, wait times, byte ratios); run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison. Benchmarks
// run at ScaleTiny so the whole suite finishes in minutes; use
// cmd/asyncbench -scale small|full for the bigger versions.
package repro

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/la"
	"repro/internal/metrics"
	"repro/internal/opt"
)

func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:         dataset.ScaleTiny,
		Seed:          42,
		MinTask:       time.Millisecond,
		SyncUpdates:   15,
		SnapshotEvery: 5,
	}
}

// meanWaitMS extracts a series' mean wait in milliseconds.
func meanWaitMS(s experiments.Series) float64 {
	return float64(s.Trace.MeanWait().Microseconds()) / 1000.0
}

// meanSpeedup averages the sync/async speedups of a paired series list.
func meanSpeedup(series []experiments.Series) float64 {
	var sum float64
	var n int
	for i := 0; i+1 < len(series); i += 2 {
		target := metrics.SharedTarget(series[i].Trace, series[i+1].Trace, 0.25)
		if sp := metrics.Speedup(series[i].Trace, series[i+1].Trace, target); sp > 0 {
			sum += sp
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable2_Datasets regenerates the dataset summary (Table 2).
func BenchmarkTable2_Datasets(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_SyncSGDvsBaseline regenerates Figure 2: SGD-in-ASYNC versus
// the Mllib-style baseline. The reported metric is the final-error ratio —
// ≈1 is the paper's claim.
func BenchmarkFig2_SyncSGDvsBaseline(b *testing.B) {
	o := benchOpts()
	var ratio float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig2(o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = 0
		for j := 0; j+1 < len(series); j += 2 {
			ratio += series[j].Trace.FinalError() / series[j+1].Trace.FinalError()
		}
		ratio /= float64(len(series) / 2)
	}
	b.ReportMetric(ratio, "final-err-ratio")
}

// BenchmarkFig3_CDS_SGD regenerates Figure 3: SGD vs ASGD under controlled
// delays on 8 workers. Metric: mean async-over-sync speedup.
func BenchmarkFig3_CDS_SGD(b *testing.B) {
	o := benchOpts()
	var sp float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.CDS(o, experiments.SGDPair)
		if err != nil {
			b.Fatal(err)
		}
		sp = meanSpeedup(series)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkFig4_WaitTimeSGD regenerates Figure 4: per-worker average wait
// time under controlled delays. Metrics: sync and async wait at 100% delay.
func BenchmarkFig4_WaitTimeSGD(b *testing.B) {
	o := benchOpts()
	var syncW, asyncW float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.CDS(o, experiments.SGDPair)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			switch s.Label {
			case "mnist8m-like/SGD-1.0":
				syncW = meanWaitMS(s)
			case "mnist8m-like/ASGD-1.0":
				asyncW = meanWaitMS(s)
			}
		}
	}
	b.ReportMetric(syncW, "sync-wait-ms")
	b.ReportMetric(asyncW, "async-wait-ms")
}

// BenchmarkFig5_CDS_SAGA regenerates Figure 5: SAGA vs ASAGA under
// controlled delays.
func BenchmarkFig5_CDS_SAGA(b *testing.B) {
	o := benchOpts()
	var sp float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.CDS(o, experiments.SAGAPair)
		if err != nil {
			b.Fatal(err)
		}
		sp = meanSpeedup(series)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkFig6_WaitTimeSAGA regenerates Figure 6: SAGA/ASAGA wait times.
func BenchmarkFig6_WaitTimeSAGA(b *testing.B) {
	o := benchOpts()
	var syncW, asyncW float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.CDS(o, experiments.SAGAPair)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			switch s.Label {
			case "mnist8m-like/SAGA-1.0":
				syncW = meanWaitMS(s)
			case "mnist8m-like/ASAGA-1.0":
				asyncW = meanWaitMS(s)
			}
		}
	}
	b.ReportMetric(syncW, "sync-wait-ms")
	b.ReportMetric(asyncW, "async-wait-ms")
}

// BenchmarkFig7_PCS_SGD regenerates Figure 7: SGD vs ASGD on 32 workers
// with production-cluster stragglers (paper: 3–4× speedup).
func BenchmarkFig7_PCS_SGD(b *testing.B) {
	o := benchOpts()
	var sp float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.PCS(o, experiments.SGDPair)
		if err != nil {
			b.Fatal(err)
		}
		sp = meanSpeedup(series)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkFig8_PCS_SAGA regenerates Figure 8: SAGA vs ASAGA on 32 workers
// with production-cluster stragglers (paper: 3.5–4×).
func BenchmarkFig8_PCS_SAGA(b *testing.B) {
	o := benchOpts()
	var sp float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.PCS(o, experiments.SAGAPair)
		if err != nil {
			b.Fatal(err)
		}
		sp = meanSpeedup(series)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkTable3_WaitTime32 regenerates Table 3: average wait per
// iteration on 32 workers for all four algorithms. Metric: the
// sync-over-async wait ratio for SGD on mnist8m-like (paper: ≈1.8×).
func BenchmarkTable3_WaitTime32(b *testing.B) {
	o := benchOpts()
	var ratio float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.PCS(o, experiments.SGDPair)
		if err != nil {
			b.Fatal(err)
		}
		var syncW, asyncW float64
		for _, s := range series {
			switch s.Label {
			case "mnist8m-like/SGD-pcs":
				syncW = meanWaitMS(s)
			case "mnist8m-like/ASGD-pcs":
				asyncW = meanWaitMS(s)
			}
		}
		if asyncW > 0 {
			ratio = syncW / asyncW
		}
	}
	b.ReportMetric(ratio, "wait-ratio")
}

// BenchmarkAblationBroadcast measures the ASYNCbroadcaster against the
// full-table broadcast of Algorithm 3. Metric: byte blow-up of the
// Spark-only path.
func BenchmarkAblationBroadcast(b *testing.B) {
	o := benchOpts()
	var blowup float64
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AblationBroadcast(o)
		if err != nil {
			b.Fatal(err)
		}
		var full, async float64
		for _, r := range tb.Rows {
			v, err := strconv.ParseFloat(r.Values["bytes_shipped"], 64)
			if err != nil {
				b.Fatal(err)
			}
			switch r.Label {
			case "full-table":
				full = v
			case "asyncbroadcast":
				async = v
			}
		}
		if async > 0 {
			blowup = full / async
		}
	}
	b.ReportMetric(blowup, "bytes-blowup")
}

// BenchmarkAblationLocalReduce measures per-worker local reduction against
// Glint-style per-sample submission.
func BenchmarkAblationLocalReduce(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLocalReduce(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBarrier sweeps barrier strategies under a 100% straggler.
func BenchmarkAblationBarrier(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBarrier(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStalenessLR measures Listing 1's learning-rate
// modulation under production stragglers.
func BenchmarkAblationStalenessLR(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStalenessLR(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtSSPSweep sweeps SSP thresholds under a 100% straggler.
func BenchmarkExtSSPSweep(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SSPSweep(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtStalenessDistribution measures the observed staleness
// histogram under PCS on 32 workers.
func BenchmarkExtStalenessDistribution(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StalenessDistribution(o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkCSRMatVec measures the sparse kernel at the heart of every
// gradient computation.
func BenchmarkCSRMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols = 2000, 500
	m := la.NewCSR(rows, cols, rows*25)
	for i := 0; i < rows; i++ {
		entries := map[int32]float64{}
		for k := 0; k < 25; k++ {
			entries[int32(rng.Intn(cols))] = rng.NormFloat64()
		}
		if err := m.AppendRow(la.SparseFromMap(cols, entries)); err != nil {
			b.Fatal(err)
		}
	}
	x := la.NewVec(cols)
	y := la.NewVec(rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(x, y)
	}
	b.SetBytes(int64(m.NNZ() * 12))
}

// BenchmarkBroadcastCache measures the worker-side versioned cache.
func BenchmarkBroadcastCache(b *testing.B) {
	c := cluster.NewBroadcastCache(0)
	v := la.NewVec(256)
	for ver := int64(0); ver < 64; ver++ {
		c.Put("w", ver, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("w", int64(i%64)); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkGradKernelLocal measures the mini-batch gradient kernel on a
// local environment (no cluster round trip).
func BenchmarkGradKernelLocal(b *testing.B) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "bench", Rows: 4000, Cols: 200, NNZPerRow: 40, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := dataset.Split(d, 4)
	if err != nil {
		b.Fatal(err)
	}
	env := cluster.NewEnv(0, 1, nil)
	for _, p := range parts {
		if err := env.InstallPartition(p); err != nil {
			b.Fatal(err)
		}
	}
	w := la.NewVec(d.NumCols())
	env.Cache().Put("w", 1, w)
	kern := opt.GradKernel(opt.LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.1)
	partIdx := []int{0, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, n, err := kern(env, partIdx, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if n > 0 {
			// recycle like the driver does after applying the update, so the
			// benchmark sees the steady-state (pooled) compute path
			la.PutVec(v.(la.Vec))
		}
	}
}

// BenchmarkGradInnerLoop measures just the mini-batch gradient inner loop —
// the paper's per-task arithmetic with every coordination layer stripped
// away. ns/gradient (reported as ns/sample) is the number the CI regression
// gate watches; allocs/op must stay 0.
func BenchmarkGradInnerLoop(b *testing.B) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "bench", Rows: 4000, Cols: 200, NNZPerRow: 40, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := dataset.Split(d, 1)
	if err != nil {
		b.Fatal(err)
	}
	env := cluster.NewEnv(0, 1, nil)
	if err := env.InstallPartition(parts[0]); err != nil {
		b.Fatal(err)
	}
	w := la.NewVec(d.NumCols())
	env.Cache().Put("w", 1, w)
	kern := opt.GradKernel(opt.LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 1.0)
	partIdx := []int{0}
	samples := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, n, err := kern(env, partIdx, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		samples += n
		la.PutVec(v.(la.Vec))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(samples), "ns/sample")
}

// BenchmarkSparseGradAccum measures the fused sparse scatter kernel alone.
func BenchmarkSparseGradAccum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const cols, nnz = 4096, 64
	idx := make([]int32, 0, nnz)
	for j := int32(0); int(j) < cols && len(idx) < nnz; j += int32(cols / nnz) {
		idx = append(idx, j)
	}
	val := make([]float64, len(idx))
	for k := range val {
		val[k] = rng.NormFloat64()
	}
	g := la.NewVec(cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.GradAccum(0.5, idx, val, g)
	}
	b.SetBytes(int64(len(idx) * 12))
}

// BenchmarkClusterRoundTrip measures the raw dispatch→execute→collect path
// of the in-process transport.
func BenchmarkClusterRoundTrip(b *testing.B) {
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Shutdown()
	router := c.Router()
	ch := make(chan *cluster.Result, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := &cluster.Task{ID: c.NextTaskID()}
		t.SetFunc(func(env *cluster.Env, tk *cluster.Task) (any, error) { return nil, nil })
		router.Route(t.ID, ch)
		if err := c.Submit(0, t); err != nil {
			b.Fatal(err)
		}
		<-ch
	}
}
