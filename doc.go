// Package repro is a from-scratch Go reproduction of "ASYNC: A Cloud Engine
// with Asynchrony and History for Distributed Machine Learning" (Soori et
// al., IPDPS 2020; arXiv:1907.08526).
//
// The library lives under internal/: a Spark-like dataflow substrate
// (cluster, rdd), the ASYNC engine itself (core), the optimization methods
// the paper evaluates (opt), straggler models (straggler), datasets
// (dataset, la), and one experiment harness per paper table and figure
// (experiments). bench_test.go in this directory regenerates every table
// and figure as a Go benchmark; cmd/asyncbench does the same as a CLI.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results.
package repro
