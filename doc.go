// Package repro is a from-scratch Go reproduction of "ASYNC: A Cloud Engine
// with Asynchrony and History for Distributed Machine Learning" (Soori et
// al., IPDPS 2020; arXiv:1907.08526).
//
// The public API is the top-level async package: async.New builds an
// Engine with functional options (workers, seed, transport, barrier
// policy, partitions), and Engine.Solve runs any optimization method
// registered in the solver registry by name — the paper's methods (sgd,
// asgd, saga, asaga, svrg, admm, bcd), the Mllib-style baseline, and the
// TCP-transport variants are pre-registered.
//
// async/jobs layers multi-tenant serving on top: a Scheduler owning a
// pool of engines and a bounded priority queue of jobs, with dataset-
// affinity routing, per-job cancellation, progress-event streams, and a
// JSON/HTTP API. cmd/asyncd runs it as a long-lived daemon.
//
// The machinery lives under internal/: a Spark-like dataflow substrate
// (cluster, rdd), the ASYNC engine itself (core), the optimization methods
// the paper evaluates and their registry (opt), straggler models
// (straggler), datasets (dataset, la), and one experiment harness per
// paper table and figure (experiments). bench_test.go in this directory
// regenerates every table and figure as a Go benchmark; cmd/asyncbench
// does the same as a CLI.
//
// See README.md for a quickstart and a tour of the layout.
package repro
