// Quickstart: build an engine over an in-process cluster, distribute a
// synthetic least-squares dataset, and train it with asynchronous SGD
// (Algorithm 2) by name through the solver registry. Prints the
// convergence trace and per-worker wait times.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
)

func main() {
	// 1. The engine: 4 local workers, 8 data partitions, ASP by default.
	eng, err := async.New(
		async.WithWorkers(4),
		async.WithSeed(1),
		async.WithPartitions(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 2. A dataset: synthetic analogue of the paper's epsilon dataset.
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d x %d\n", d.Name, d.NumRows(), d.NumCols())

	// 3. Distribute it as an RDD (lineage kept for recovery); the returned
	// handle is live — count rows through the cluster to prove placement.
	points, err := eng.Distribute(d)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := points.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed %d rows over %d partitions\n", rows, points.NumPartitions())

	// 4. Reference optimum for error reporting (the paper's baseline run).
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Asynchronous SGD by registry name: per-result updates, ASP
	// barrier, step = sync/P.
	res, err := eng.Solve(context.Background(), "asgd", d, async.SolveOptions{
		Params: opt.Params{
			Step:          opt.Scaled{Base: opt.InvSqrt{A: 0.5 / float64(d.NumCols())}, Factor: 4},
			SampleFrac:    0.25,
			Updates:       400,
			SnapshotEvery: 50,
		},
		FStar: fstar,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Trace.Format())
	fmt.Print(res.Trace.FormatWait())
}
