// Quickstart: build an in-process cluster, distribute a synthetic
// least-squares dataset, and train it with asynchronous SGD (Algorithm 2)
// through the ASYNC engine. Prints the convergence trace and per-worker
// wait times.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/rdd"
)

func main() {
	// 1. A local "cluster": 4 worker goroutines with channel transports.
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	// 2. A dataset: synthetic analogue of the paper's epsilon dataset.
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d x %d\n", d.Name, d.NumRows(), d.NumCols())

	// 3. Distribute it as an RDD (8 partitions, lineage kept for recovery).
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 8); err != nil {
		log.Fatal(err)
	}

	// 4. The ASYNC context: coordinator + scheduler + broadcaster.
	ac := core.New(rctx)
	defer ac.Close()

	// 5. Reference optimum for error reporting (the paper's baseline run).
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		log.Fatal(err)
	}

	// 6. Asynchronous SGD: per-result updates, ASP barrier, step = sync/P.
	res, err := opt.ASGD(ac, d, opt.Params{
		Step:          opt.Scaled{Base: opt.InvSqrt{A: 0.5 / float64(d.NumCols())}, Factor: 4},
		SampleFrac:    0.25,
		Updates:       400,
		SnapshotEvery: 50,
	}, fstar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Trace.Format())
	fmt.Print(res.Trace.FormatWait())
}
