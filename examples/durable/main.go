// Example durable demonstrates the WAL-backed job store end to end: a
// scheduler with a store directory accepts a long checkpointing job and a
// queued follow-up, drains gracefully mid-run (the running job is
// preempted and its checkpoint spilled durably), and "restarts" — a second
// scheduler recovers the same directory, resumes the preempted job from
// its last durable checkpoint, and finishes everything with no work lost.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/async/jobs/store"
)

func main() {
	dir, err := os.MkdirTemp("", "asyncd-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("store directory: %s\n", dir)

	spec := jobs.Spec{
		Algorithm:       "asgd",
		Dataset:         jobs.DatasetSpec{Name: "rcv1-like"},
		Step:            jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:         4000,
		SnapshotEvery:   100,
		CheckpointEvery: 100, // at most 100 updates of work at risk
	}
	engOpts := []async.Option{
		async.WithWorkers(2),
		async.WithPartitions(4),
		async.WithMinTaskTime(500 * time.Microsecond), // stretch the run so the drain lands mid-flight
	}

	// ---- first process lifetime ----
	w, err := store.Open(dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := jobs.New(jobs.Config{Engines: 1, EngineOptions: engOpts, Store: w})
	if err != nil {
		log.Fatal(err)
	}
	longID, err := sched.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	short := spec
	short.Updates = 400
	queuedID, err := sched.Submit(short) // waits behind the long job
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (long, running) and %s (queued)\n", longID, queuedID)

	// let the long job make durable progress, then shut down gracefully —
	// what asyncd does on SIGTERM
	for {
		j, err := sched.Status(longID)
		if err != nil {
			log.Fatal(err)
		}
		if j.Updates >= 500 {
			fmt.Printf("long job at %d updates; draining\n", j.Updates)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := sched.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	cancel()
	j, _ := sched.Status(longID)
	fmt.Printf("drained: %s is %s with a durable checkpoint at %d updates\n", longID, j.State, j.Updates)
	if err := sched.Close(); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// ---- second process lifetime: recover the same directory ----
	w2, err := store.Open(dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer w2.Close()
	sched2, err := jobs.New(jobs.Config{Engines: 1, EngineOptions: engOpts, Store: w2})
	if err != nil {
		log.Fatal(err)
	}
	defer sched2.Close()
	st := sched2.Stats()
	fmt.Printf("recovered %d jobs in %.1fms\n", st.RecoveredJobs, st.RecoveryMS)

	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer wcancel()
	for _, id := range []jobs.ID{longID, queuedID} {
		job, err := sched2.Wait(wctx, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s finished %s after %d updates (%d preemption(s))\n",
			job.ID, job.State, job.Updates, job.Preemptions)
	}
	fmt.Println("restart lost no submitted job and at most checkpoint_every updates of progress")
}
