// Example preempt demonstrates scheduler preemption through the jobs HTTP
// API: a long low-priority job is checkpointed aside the moment a
// high-priority job arrives on a saturated pool, the urgent job runs to
// completion, and the preempted job resumes from its checkpoint and
// finishes — no work lost, verified by downloading the checkpoint.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/internal/opt"
)

func main() {
	sched, err := jobs.New(jobs.Config{
		Engines: 1, // one engine: the urgent job MUST displace the long one
		EngineOptions: []async.Option{
			async.WithWorkers(2),
			async.WithPartitions(4),
			async.WithMinTaskTime(500 * time.Microsecond), // stretch the run so the race is visible
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()
	srv := httptest.NewServer(jobs.NewHandler(sched))
	defer srv.Close()

	// a long background fit at default priority...
	longID := submit(srv.URL, map[string]any{
		"algorithm":        "asgd",
		"dataset":          map[string]any{"name": "rcv1-like"},
		"step":             map[string]any{"kind": "const", "a": 0.01},
		"updates":          4000,
		"snapshot_every":   100,
		"checkpoint_every": 100,
	})
	fmt.Printf("submitted long job %s (priority 0)\n", longID)
	waitFor(srv.URL, longID, func(j jobState) bool { return j.State == "running" && j.Updates > 0 })

	// ...until an urgent job arrives: strictly higher priority on a
	// saturated pool preempts the running job at its next update boundary
	urgentID := submit(srv.URL, map[string]any{
		"algorithm": "asgd",
		"dataset":   map[string]any{"name": "rcv1-like"},
		"step":      map[string]any{"kind": "const", "a": 0.01},
		"updates":   300,
		"priority":  10,
	})
	fmt.Printf("submitted urgent job %s (priority 10)\n", urgentID)

	waitFor(srv.URL, longID, func(j jobState) bool { return j.State == "preempted" })
	cp := fetchCheckpoint(srv.URL, longID)
	fmt.Printf("long job preempted: checkpoint at update %d (%d-dim model) kept server-side\n",
		cp.Updates, len(cp.W))

	urgent := waitFor(srv.URL, urgentID, func(j jobState) bool { return j.State == "done" })
	fmt.Printf("urgent job done after %d updates\n", urgent.Updates)

	long := waitFor(srv.URL, longID, func(j jobState) bool { return j.State == "done" })
	fmt.Printf("long job resumed from its checkpoint and finished: %d updates total, %d preemption(s)\n",
		long.Updates, long.Preemptions)
}

type jobState struct {
	State       string `json:"state"`
	Updates     int64  `json:"updates"`
	Preemptions int    `json:"preemptions"`
}

func submit(base string, spec map[string]any) string {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit: %s: %s", resp.Status, msg)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out.ID
}

func waitFor(base, id string, cond func(jobState) bool) jobState {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var j jobState
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if cond(j) {
			return j
		}
		if time.Now().After(deadline) {
			log.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func fetchCheckpoint(base, id string) *opt.Checkpoint {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("checkpoint: %s", resp.Status)
	}
	cp, err := opt.LoadCheckpoint(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return cp
}
