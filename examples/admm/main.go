// admm runs consensus ADMM — synchronously (BSP) and asynchronously (ASP) —
// on a distributed least-squares problem, under a straggling worker. Each
// worker keeps local primal/dual state and solves its proximal subproblem
// with a local conjugate-gradient solve; only the consensus variable
// crosses the wire, via the ASYNCbroadcaster. Both variants are the same
// registered solver run under different barrier policies.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/straggler"
)

func run(name string, barrier async.Barrier) {
	eng, err := async.New(
		async.WithWorkers(4),
		async.WithSeed(6),
		async.WithPartitions(8),
		async.WithStraggler(straggler.ControlledDelay{Worker: 2, Intensity: 1.0}),
		async.WithMinTaskTime(time.Millisecond),
		async.WithBarrier(barrier),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 17))
	if err != nil {
		log.Fatal(err)
	}
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Solve(context.Background(), "admm", d, async.SolveOptions{
		Params: opt.Params{Updates: 40, SnapshotEvery: 10},
		FStar:  fstar,
		ADMM:   opt.ADMMConfig{Rho: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s final error %.3e in %v\n",
		name, res.Trace.FinalError(), res.Trace.Total.Round(time.Millisecond))
}

func main() {
	fmt.Println("consensus ADMM on least squares, one worker at half speed")
	run("ADMM (BSP)", async.BSP())
	run("ADMM (ASP)", async.ASP())
}
