// admm runs consensus ADMM — synchronously (BSP) and asynchronously (ASP) —
// on a distributed least-squares problem, under a straggling worker. Each
// worker keeps local primal/dual state and solves its proximal subproblem
// with a local conjugate-gradient solve; only the consensus variable
// crosses the wire, via the ASYNCbroadcaster.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/rdd"
	"repro/internal/straggler"
)

func run(name string, barrier core.BarrierFunc) {
	c, err := cluster.NewLocal(cluster.Config{
		NumWorkers:  4,
		Delay:       straggler.ControlledDelay{Worker: 2, Intensity: 1.0},
		Seed:        6,
		MinTaskTime: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 17))
	if err != nil {
		log.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 8); err != nil {
		log.Fatal(err)
	}
	ac := core.New(rctx)
	defer ac.Close()
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		log.Fatal(err)
	}
	res, err := opt.ADMM(ac, d, opt.ADMMParams{
		Rho:      1,
		Rounds:   40,
		Barrier:  barrier,
		Snapshot: 10,
	}, fstar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s final error %.3e in %v\n",
		name, res.Trace.FinalError(), res.Trace.Total.Round(time.Millisecond))
}

func main() {
	fmt.Println("consensus ADMM on least squares, one worker at half speed")
	run("ADMM (BSP)", core.BSP())
	run("ADMM (ASP)", core.ASP())
}
