// saga_history demonstrates the ASYNCbroadcaster (§4.3): SAGA and ASAGA
// need per-sample historical gradients, which ASYNC supports by versioned
// broadcast — the driver re-broadcasts only (id, version); each worker
// caches the model versions it has seen and resolves w_br.value(index)
// locally. The example runs both variants under a controlled-delay
// straggler and reports the value traffic the fetch path actually carried.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/rdd"
	"repro/internal/straggler"
)

func run(algo string, async bool) {
	// worker 0 runs at half speed (100% controlled delay)
	c, err := cluster.NewLocal(cluster.Config{
		NumWorkers: 4,
		Delay:      straggler.ControlledDelay{Worker: 0, Intensity: 1.0},
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	d, err := dataset.Generate(dataset.RCV1Like(dataset.ScaleTiny, 11))
	if err != nil {
		log.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 8); err != nil {
		log.Fatal(err)
	}
	ac := core.New(rctx)
	defer ac.Close()
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		log.Fatal(err)
	}
	params := opt.Params{
		Step:          opt.Constant{A: 0.5 / float64(8) / 4},
		SampleFrac:    0.3,
		Updates:       200,
		SnapshotEvery: 50,
	}
	var res *opt.Result
	if async {
		res, err = opt.ASAGA(ac, d, params, fstar)
	} else {
		params.Updates = 50 // BSP rounds: every round consumes all workers
		res, err = opt.SAGA(ac, d, params, fstar)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s final error %.4g in %v; broadcast values fetched: %d (ID-only re-broadcast otherwise)\n",
		algo, res.Trace.FinalError(), res.Trace.Total.Round(1000), c.FetchCount())
}

func main() {
	fmt.Println("SAGA vs ASAGA with historical gradients under a 100% straggler")
	run("SAGA", false)
	run("ASAGA", true)
}
