// saga_history demonstrates the ASYNCbroadcaster (§4.3): SAGA and ASAGA
// need per-sample historical gradients, which ASYNC supports by versioned
// broadcast — the driver re-broadcasts only (id, version); each worker
// caches the model versions it has seen and resolves w_br.value(index)
// locally. The example runs both variants through the solver registry
// under a controlled-delay straggler and reports the value traffic the
// fetch path actually carried.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/straggler"
)

func run(algo string, updates int) {
	// worker 0 runs at half speed (100% controlled delay)
	eng, err := async.New(
		async.WithWorkers(4),
		async.WithSeed(3),
		async.WithPartitions(8),
		async.WithStraggler(straggler.ControlledDelay{Worker: 0, Intensity: 1.0}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	d, err := dataset.Generate(dataset.RCV1Like(dataset.ScaleTiny, 11))
	if err != nil {
		log.Fatal(err)
	}
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Solve(context.Background(), algo, d, async.SolveOptions{
		Params: opt.Params{
			Step:          opt.Constant{A: 0.5 / float64(8) / 4},
			SampleFrac:    0.3,
			Updates:       updates,
			SnapshotEvery: 50,
		},
		FStar: fstar,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s final error %.4g in %v; broadcast values fetched: %d (ID-only re-broadcast otherwise)\n",
		algo, res.Trace.FinalError(), res.Trace.Total.Round(1000), eng.Cluster().FetchCount())
}

func main() {
	fmt.Println("SAGA vs ASAGA with historical gradients under a 100% straggler")
	run("saga", 50) // BSP rounds: every round consumes all workers
	run("asaga", 200)
}
