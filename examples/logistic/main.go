// logistic trains a binary classifier with asynchronous SGD on the logistic
// loss, using a train/test split and reporting held-out accuracy — the
// ASYNC engine is loss-agnostic, so switching from the paper's least
// squares to logistic regression is a one-line change in the solve options.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
)

func main() {
	eng, err := async.New(async.WithWorkers(4), async.WithSeed(21), async.WithPartitions(8))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	full, err := dataset.Generate(dataset.RCV1Like(dataset.ScaleTiny, 13))
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := dataset.TrainTestSplit(full, 0.25, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train %d rows, test %d rows, %d features\n",
		train.NumRows(), test.NumRows(), train.NumCols())

	// FStar=0: the trace reports raw logistic loss
	res, err := eng.Solve(context.Background(), "asgd", train, async.SolveOptions{
		Params: opt.Params{
			Loss:          opt.Logistic{},
			Step:          opt.Constant{A: 0.5},
			SampleFrac:    0.3,
			Updates:       600,
			SnapshotEvery: 150,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	trainAcc, err := opt.Accuracy(train, res.W)
	if err != nil {
		log.Fatal(err)
	}
	testAcc, err := opt.Accuracy(test, res.W)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final train loss %.4f\n", res.Trace.FinalError())
	fmt.Printf("accuracy: train %.1f%%, held-out test %.1f%%\n", 100*trainAcc, 100*testAcc)
}
