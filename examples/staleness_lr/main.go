// staleness_lr implements Listing 1: a staleness-dependent learning rate.
// ASYNCcollectAll returns each task result together with its attributes
// (worker id, staleness, mini-batch size), and the driver divides the step
// by the staleness — the modulation technique of Zhang et al. [72]. The
// example trains under production-cluster stragglers with and without the
// modulation and prints both final errors.
package main

import (
	"fmt"
	"log"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/opt"
	"repro/internal/straggler"
)

func train(modulate bool) float64 {
	model, err := straggler.NewProductionCluster(8, 5)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := async.New(
		async.WithWorkers(8),
		async.WithSeed(2),
		async.WithPartitions(8),
		async.WithStraggler(model),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 3))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Distribute(d); err != nil {
		log.Fatal(err)
	}
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		log.Fatal(err)
	}
	ac := eng.Context()

	w := la.NewVec(d.NumCols())
	loss := opt.LeastSquares{}
	alpha := 0.5 / float64(d.NumCols()) / 8
	const updates = 400
	k := int64(0)
	for k < updates {
		wBr := ac.ASYNCbroadcast("w", w.Clone())
		sel, err := ac.ASYNCbarrier(async.ASP(), nil)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ac.ASYNCreduce(sel, opt.GradKernel(loss, wBr, 0.4)); err != nil {
			log.Fatal(err)
		}
		// Listing 1:
		//   while(AC.hasNext()){
		//     (gradient, attr) = AC.ASYNCcollectAll()
		//     w -= alpha/attr.staleness * gradient
		//   }
		for first := true; (first || ac.HasNext()) && k < updates; first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			step := alpha
			if modulate {
				step = opt.StalenessAdapt(alpha, tr.Attrs.Staleness)
			}
			// dense or sparse payload, depending on the dataset's density
			if err := opt.AxpyPayload(-step/float64(tr.Attrs.MiniBatch), tr.Payload, w); err != nil {
				log.Fatal(err)
			}
			k = ac.AdvanceClock()
		}
	}
	return opt.Objective(d, loss, w) - fstar
}

func main() {
	fmt.Println("ASGD under production-cluster stragglers, 400 updates")
	fmt.Printf("fixed learning rate:      final error %.4g\n", train(false))
	fmt.Printf("staleness-dependent rate: final error %.4g\n", train(true))
}
