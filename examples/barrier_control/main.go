// barrier_control demonstrates the ASYNCscheduler's barrier-control
// interface (Listing 2): the same training loop runs under ASP, BSP, SSP
// and a custom completion-time barrier, each expressed as a predicate over
// the STAT table. The loop drives the raw Table-1 primitives through
// Engine.Context — no internal wiring needed.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/opt"
	"repro/internal/straggler"
)

func train(name string, barrier async.Barrier, filter async.Filter) {
	eng, err := async.New(
		async.WithWorkers(4),
		async.WithSeed(9),
		async.WithPartitions(8),
		async.WithStraggler(straggler.ControlledDelay{Worker: 3, Intensity: 1.5}),
		async.WithMinTaskTime(time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	d, err := dataset.Generate(dataset.MNIST8MLike(dataset.ScaleTiny, 4))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Distribute(d); err != nil {
		log.Fatal(err)
	}
	ac := eng.Context()

	// hand-rolled ASGD loop so the barrier is front and centre
	w := la.NewVec(d.NumCols())
	loss := opt.LeastSquares{}
	step := opt.Scaled{Base: opt.InvSqrt{A: 0.5 / float64(d.NumCols())}, Factor: 4}
	const updates = 160
	start := time.Now()
	k := int64(0)
	for k < updates {
		wBr := ac.ASYNCbroadcast("w", w.Clone())
		sel, err := ac.ASYNCbarrier(barrier, filter)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if _, err := ac.ASYNCreduce(sel, opt.GradKernel(loss, wBr, 0.4)); err != nil {
			log.Fatal(err)
		}
		for first := true; (first || ac.HasNext()) && k < updates; first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			// dense or sparse payload, depending on the dataset's density
			if err := opt.AxpyPayload(-step.Alpha(k)/float64(tr.Attrs.MiniBatch), tr.Payload, w); err != nil {
				log.Fatal(err)
			}
			k = ac.AdvanceClock()
		}
	}
	st := ac.STAT()
	fmt.Printf("%-22s %4d updates in %8v; max in-flight staleness %d\n",
		name, k, time.Since(start).Round(time.Millisecond), st.MaxStaleness)
}

func main() {
	fmt.Println("one straggling worker (150% delay); same loop, four barrier strategies")
	// ASP: f: STAT.foreach(true)
	train("ASP", async.ASP(), nil)
	// BSP: f: STAT.foreach(Available_Workers == P)
	train("BSP", async.BSP(), nil)
	// SSP: f: STAT.foreach(MAX_Staleness < s)
	train("SSP(s=32)", async.SSP(32), nil)
	// custom: only task workers whose average completion time is bounded —
	// the completion-time barrier family of [69]
	train("AvgTaskTime<4ms", async.ASP(), async.MaxAvgTaskTime(4*time.Millisecond))
}
