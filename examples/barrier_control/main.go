// barrier_control demonstrates the ASYNCscheduler's barrier-control
// interface (Listing 2): the same training loop runs under ASP, BSP, SSP
// and a custom completion-time barrier, each expressed as a predicate over
// the STAT table.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/opt"
	"repro/internal/rdd"
	"repro/internal/straggler"
)

func train(name string, barrier core.BarrierFunc, filter core.WorkerFilter) {
	c, err := cluster.NewLocal(cluster.Config{
		NumWorkers:  4,
		Delay:       straggler.ControlledDelay{Worker: 3, Intensity: 1.5},
		Seed:        9,
		MinTaskTime: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	d, err := dataset.Generate(dataset.MNIST8MLike(dataset.ScaleTiny, 4))
	if err != nil {
		log.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 8); err != nil {
		log.Fatal(err)
	}
	ac := core.New(rctx)
	defer ac.Close()

	// hand-rolled ASGD loop so the barrier is front and centre
	w := la.NewVec(d.NumCols())
	loss := opt.LeastSquares{}
	step := opt.Scaled{Base: opt.InvSqrt{A: 0.5 / float64(d.NumCols())}, Factor: 4}
	const updates = 160
	start := time.Now()
	k := int64(0)
	for k < updates {
		wBr := ac.ASYNCbroadcast("w", w.Clone())
		sel, err := ac.ASYNCbarrier(barrier, filter)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if _, err := ac.ASYNCreduce(sel, opt.GradKernel(loss, wBr, 0.4)); err != nil {
			log.Fatal(err)
		}
		for first := true; (first || ac.HasNext()) && k < updates; first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			g := tr.Payload.(la.Vec)
			la.Axpy(-step.Alpha(k)/float64(tr.Attrs.MiniBatch), g, w)
			k = ac.AdvanceClock()
		}
	}
	st := ac.STAT()
	fmt.Printf("%-22s %4d updates in %8v; max in-flight staleness %d\n",
		name, k, time.Since(start).Round(time.Millisecond), st.MaxStaleness)
}

func main() {
	fmt.Println("one straggling worker (150% delay); same loop, four barrier strategies")
	// ASP: f: STAT.foreach(true)
	train("ASP", core.ASP(), nil)
	// BSP: f: STAT.foreach(Available_Workers == P)
	train("BSP", core.BSP(), nil)
	// SSP: f: STAT.foreach(MAX_Staleness < s)
	train("SSP(s=32)", core.SSP(32), nil)
	// custom: only task workers whose average completion time is bounded —
	// the completion-time barrier family of [69]
	train("AvgTaskTime<4ms", core.ASP(), core.MaxAvgTaskTime(4*time.Millisecond))
}
