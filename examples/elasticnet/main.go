// Elastic net: solve one composite objective — logistic-style least
// squares plus ℓ2 and ℓ1 penalties declared structurally — with the two
// composite-objective solvers: proximal coordinate descent (cd, block
// prox steps over incrementally maintained residuals) and restart-based
// generalized conjugate gradient (gcg). The ℓ1 term is handled by a
// proximal soft-threshold, so the final models carry exact zeros; the
// program prints the objective value and the sparsity each solver reached.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
)

func main() {
	eng, err := async.New(
		async.WithWorkers(4),
		async.WithSeed(1),
		async.WithPartitions(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// An rcv1-like sparse dataset: wide and sparse is where the ℓ1 term
	// and the O(nnz) coordinate updates earn their keep.
	d, err := dataset.Generate(dataset.RCV1Like(dataset.ScaleTiny, 7))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Distribute(d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d x %d\n", d.Name, d.NumRows(), d.NumCols())

	// One structured objective, shared by both solves (and identical to
	// the jobs-API JSON form {"objective":{"l2":0.01,"l1":0.005}}).
	obj := async.Objective{Loss: "least-squares", L2: 0.01, L1: 0.005}
	loss, err := obj.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	for _, solver := range []string{"cd", "gcg"} {
		res, err := eng.Solve(context.Background(), solver, d, async.SolveOptions{
			Objective: obj,
			Params: opt.Params{
				Step:          opt.Constant{A: 0.05},
				Updates:       200,
				SnapshotEvery: 40,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		zeros := 0
		for _, x := range res.W {
			if x == 0 {
				zeros++
			}
		}
		fmt.Printf("%-4s f(w) = %.6f, %d/%d coordinates exactly zero\n",
			solver, opt.Objective(d, loss, res.W), zeros, len(res.W))
	}
}
