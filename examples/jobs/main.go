// Example jobs drives the job-scheduling subsystem in-process: a 2-engine
// pool serving a burst of mixed optimization jobs — different algorithms,
// datasets, barriers and priorities — with live progress streaming for one
// of them. The same Specs POST unchanged to a running asyncd daemon.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/async"
	"repro/async/jobs"
)

// submitWithRetry submits with capped exponential backoff plus jitter on
// backpressure — the in-process mirror of how an HTTP client should treat
// a 503 + Retry-After from POST /v1/jobs: ErrQueueFull and
// ErrStoreUnavailable are transient, everything else is the caller's bug.
func submitWithRetry(sched *jobs.Scheduler, spec jobs.Spec) (jobs.ID, error) {
	const (
		baseDelay = 50 * time.Millisecond
		maxDelay  = 2 * time.Second
		attempts  = 8
	)
	delay := baseDelay
	for attempt := 1; ; attempt++ {
		id, err := sched.Submit(spec)
		if err == nil || !(errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrStoreUnavailable)) {
			return id, err
		}
		if attempt == attempts {
			return "", fmt.Errorf("submit: %w (gave up after %d attempts)", err, attempts)
		}
		// full jitter: sleep a uniform fraction of the capped exponential
		// delay, so colliding clients spread out instead of thundering back
		sleep := time.Duration(rand.Int63n(int64(delay)))
		fmt.Printf("backpressure (%v); retrying in %v (attempt %d/%d)\n",
			err, sleep.Round(time.Millisecond), attempt, attempts)
		time.Sleep(sleep)
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

func main() {
	sched, err := jobs.New(jobs.Config{
		Engines: 2,
		// a deliberately shallow queue: the burst below overflows it, so the
		// submission loop exercises the backoff path a real client needs
		QueueDepth:    3,
		EngineOptions: []async.Option{async.WithWorkers(4)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()

	specs := []jobs.Spec{
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, Updates: 400, AutoFStar: true},
		{Algorithm: "saga", Dataset: jobs.DatasetSpec{Name: "rcv1-like"},
			Step: jobs.StepSpec{Kind: "const", A: 0.05, Factor: 1}, Updates: 100, AutoFStar: true},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "mnist8m-like"},
			Barrier: jobs.BarrierSpec{Kind: "ssp", Staleness: 16},
			Step:    jobs.StepSpec{A: 0.002}, Updates: 400, AutoFStar: true},
		{Algorithm: "sgd", Dataset: jobs.DatasetSpec{Name: "epsilon-like"},
			Step: jobs.StepSpec{A: 0.02}, Updates: 80, AutoFStar: true},
		// high priority: jumps the queue ahead of earlier submissions
		{Algorithm: "asaga", Dataset: jobs.DatasetSpec{Name: "rcv1-like"},
			Step: jobs.StepSpec{Kind: "const", A: 0.0125, Factor: 1}, Updates: 400,
			Priority: 10, AutoFStar: true},
		{Algorithm: "admm", Dataset: jobs.DatasetSpec{Name: "epsilon-like"}, Updates: 20, AutoFStar: true},
	}
	ids := make([]jobs.ID, len(specs))
	for i, spec := range specs {
		if ids[i], err = submitWithRetry(sched, spec); err != nil {
			log.Fatalf("submit %d: %v", i, err)
		}
		fmt.Printf("submitted %-7s %-14s as %s (priority %d)\n",
			spec.Algorithm, spec.Dataset.Name, ids[i], spec.Priority)
	}

	// follow the first job's event stream while the pool works the queue
	events, stop, err := sched.Subscribe(ids[0])
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	for ev := range events {
		switch {
		case ev.Type == jobs.EventProgress && ev.Error != nil:
			fmt.Printf("  %s: %5d updates, error %.4g (%.1f ms)\n",
				ev.Job, ev.Updates, *ev.Error, ev.ElapsedMS)
		case ev.Type == jobs.EventProgress:
			fmt.Printf("  %s: %5d updates (%.1f ms)\n", ev.Job, ev.Updates, ev.ElapsedMS)
		default:
			fmt.Printf("  %s: %s\n", ev.Job, ev.Type)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fmt.Println("\njob                state     engine  updates  final error   mean wait")
	for _, id := range ids {
		job, err := sched.Wait(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		finalErr := "n/a"
		if job.FinalError != nil {
			finalErr = fmt.Sprintf("%.6g", *job.FinalError)
		}
		wait := "n/a"
		if job.Wait != nil {
			wait = fmt.Sprintf("%.3f ms", job.Wait.MeanMS)
		}
		fmt.Printf("%-18s %-9s %6d %8d  %-12s  %s\n",
			job.ID, job.State, job.Engine, job.Updates, finalErr, wait)
	}
	st := sched.Stats()
	fmt.Printf("\npool: %d/%d engines, %d done, avg queue wait %.1f ms, max %.1f ms\n",
		st.EnginesLive, st.EnginesMax, st.Done, st.AvgQueueWaitMS, st.MaxQueueWaitMS)
}
