// Example jobs drives the job-scheduling subsystem in-process: a 2-engine
// pool serving a burst of mixed optimization jobs — different algorithms,
// datasets, barriers and priorities — with live progress streaming for one
// of them. The same Specs POST unchanged to a running asyncd daemon.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/async"
	"repro/async/jobs"
)

func main() {
	sched, err := jobs.New(jobs.Config{
		Engines:       2,
		EngineOptions: []async.Option{async.WithWorkers(4)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()

	specs := []jobs.Spec{
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "rcv1-like"}, Updates: 400, AutoFStar: true},
		{Algorithm: "saga", Dataset: jobs.DatasetSpec{Name: "rcv1-like"},
			Step: jobs.StepSpec{Kind: "const", A: 0.05, Factor: 1}, Updates: 100, AutoFStar: true},
		{Algorithm: "asgd", Dataset: jobs.DatasetSpec{Name: "mnist8m-like"},
			Barrier: jobs.BarrierSpec{Kind: "ssp", Staleness: 16},
			Step:    jobs.StepSpec{A: 0.002}, Updates: 400, AutoFStar: true},
		{Algorithm: "sgd", Dataset: jobs.DatasetSpec{Name: "epsilon-like"},
			Step: jobs.StepSpec{A: 0.02}, Updates: 80, AutoFStar: true},
		// high priority: jumps the queue ahead of earlier submissions
		{Algorithm: "asaga", Dataset: jobs.DatasetSpec{Name: "rcv1-like"},
			Step: jobs.StepSpec{Kind: "const", A: 0.0125, Factor: 1}, Updates: 400,
			Priority: 10, AutoFStar: true},
		{Algorithm: "admm", Dataset: jobs.DatasetSpec{Name: "epsilon-like"}, Updates: 20, AutoFStar: true},
	}
	ids := make([]jobs.ID, len(specs))
	for i, spec := range specs {
		if ids[i], err = sched.Submit(spec); err != nil {
			log.Fatalf("submit %d: %v", i, err)
		}
		fmt.Printf("submitted %-7s %-14s as %s (priority %d)\n",
			spec.Algorithm, spec.Dataset.Name, ids[i], spec.Priority)
	}

	// follow the first job's event stream while the pool works the queue
	events, stop, err := sched.Subscribe(ids[0])
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	for ev := range events {
		switch {
		case ev.Type == jobs.EventProgress && ev.Error != nil:
			fmt.Printf("  %s: %5d updates, error %.4g (%.1f ms)\n",
				ev.Job, ev.Updates, *ev.Error, ev.ElapsedMS)
		case ev.Type == jobs.EventProgress:
			fmt.Printf("  %s: %5d updates (%.1f ms)\n", ev.Job, ev.Updates, ev.ElapsedMS)
		default:
			fmt.Printf("  %s: %s\n", ev.Job, ev.Type)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fmt.Println("\njob                state     engine  updates  final error   mean wait")
	for _, id := range ids {
		job, err := sched.Wait(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		finalErr := "n/a"
		if job.FinalError != nil {
			finalErr = fmt.Sprintf("%.6g", *job.FinalError)
		}
		wait := "n/a"
		if job.Wait != nil {
			wait = fmt.Sprintf("%.3f ms", job.Wait.MeanMS)
		}
		fmt.Printf("%-18s %-9s %6d %8d  %-12s  %s\n",
			job.ID, job.State, job.Engine, job.Updates, finalErr, wait)
	}
	st := sched.Stats()
	fmt.Printf("\npool: %d/%d engines, %d done, avg queue wait %.1f ms, max %.1f ms\n",
		st.EnginesLive, st.EnginesMax, st.Done, st.AvgQueueWaitMS, st.MaxQueueWaitMS)
}
